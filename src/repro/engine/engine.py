"""The batched query engine — one preprocessing pass, many reports.

:class:`QueryEngine` is the seam between the paper's index structures
and a serving workload: callers submit batches of declarative
:class:`~repro.engine.spec.QuerySpec` objects, the planner maps each
onto an index family and cache key, the shared-index cache builds every
distinct index exactly once, and the executor answers independent
queries concurrently.

Typical use::

    from repro import QueryEngine, QuerySpec

    engine = QueryEngine()
    batch = engine.run_batch(tps, [
        QuerySpec(kind="triangles", taus=(4.0, 6.0, 8.0)),   # τ-sweep
        QuerySpec(kind="pairs-sum", taus=6.0),
        QuerySpec(kind="pairs-union", taus=6.0, kappa=3),
        QuerySpec(kind="cliques", taus=5.0, m=4),
    ])
    for result in batch:
        print(result.spec.kind, result.count, result.cache_hit)

The same engine (and therefore the same cache) also backs the one-call
helpers of :mod:`repro.api` and the benchmark harness, so production,
scripting and measurement all exercise one code path.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Optional, Union

from ..types import TemporalPointSet
from .cache import CacheStats, IndexCache
from .executor import execute_plans
from .planner import distinct_index_keys, plan_batch, plan_query
from .results import BatchResult, QueryResult
from .spec import QuerySpec

__all__ = ["QueryEngine"]

SpecLike = Union[QuerySpec, Mapping[str, Any]]


def _coerce_spec(spec: SpecLike) -> QuerySpec:
    if isinstance(spec, QuerySpec):
        return spec
    return QuerySpec.from_dict(spec)


class QueryEngine:
    """Plan, cache and execute durable-pattern query batches.

    Parameters
    ----------
    cache:
        Shared :class:`~repro.engine.cache.IndexCache`; defaults to a
        private unbounded cache.  Pass an explicit instance to share
        indexes across engines or to bound memory (``max_entries``).
    max_workers:
        Thread-pool width for batches (default: one per query, capped
        at the host CPU count).
    """

    def __init__(
        self,
        cache: Optional[IndexCache] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.cache = cache if cache is not None else IndexCache()
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def run_batch(
        self,
        tps: TemporalPointSet,
        specs: Iterable[SpecLike],
        parallel: bool = True,
        raise_on_error: bool = False,
    ) -> BatchResult:
        """Execute a batch of queries over one dataset.

        Results come back in submission order; every distinct index is
        built at most once (across this call *and* any earlier call that
        populated the cache).

        Faults are isolated per query: a spec whose builder or runner
        raises yields a :class:`~repro.engine.results.QueryResult` with
        ``ok=False`` and its ``error`` set, while every other query's
        result is returned intact (the pre-fix engine threw the whole
        batch away).  Pass ``raise_on_error=True`` to restore the old
        raise-through contract.  Malformed specs still raise
        :class:`~repro.errors.ValidationError` at planning time, before
        anything executes.
        """
        coerced = [_coerce_spec(s) for s in specs]
        plans = plan_batch(coerced, tps)
        before = self.cache.stats.snapshot()
        t0 = time.perf_counter()
        results = execute_plans(
            plans,
            self.cache,
            max_workers=self.max_workers,
            parallel=parallel,
            raise_on_error=raise_on_error,
        )
        wall = time.perf_counter() - t0
        return BatchResult(
            results=tuple(results),
            wall_seconds=wall,
            distinct_indexes=len(distinct_index_keys(plans)),
            # Only this batch's activity — a long-lived engine's cumulative
            # figures stay on engine.stats.
            cache_stats=self.cache.stats.snapshot().since(before).as_dict(),
        )

    def run(self, tps: TemporalPointSet, spec: SpecLike, **overrides: Any) -> QueryResult:
        """Execute a single query (sequentially, same cache).

        A failing query raises — single-query callers (``repro.api``)
        keep the historical exception contract.
        """
        coerced = _coerce_spec(spec)
        if overrides:
            coerced = QuerySpec(**{**coerced.__dict__, **overrides})
        plan = plan_query(0, coerced, tps)
        return execute_plans([plan], self.cache, parallel=False, raise_on_error=True)[0]

    def get_index(self, tps: TemporalPointSet, spec: SpecLike) -> Any:
        """Build (or fetch) the shared index a spec resolves to.

        This is the bench-harness hook: it exposes the underlying index
        object (``DurableTriangleIndex``, ``SumPairIndex``, …) while
        keeping its construction on the engine's cached path.
        """
        plan = plan_query(0, _coerce_spec(spec), tps)
        return self.cache.get_or_build(plan.key, plan.builder).index

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Live cache statistics (hits/misses/builds/build time)."""
        return self.cache.stats

    def reset(self) -> None:
        """Drop cached indexes and zero the statistics."""
        self.cache.clear()
        self.cache.reset_stats()
