"""Query planning: map specs onto index families and cache keys.

``plan_batch`` turns ``(TemporalPointSet, [QuerySpec, …])`` into
:class:`QueryPlan` objects carrying everything the executor needs: the
:class:`~repro.engine.cache.IndexKey` under which the preprocessing
pass may be shared, a builder closure, and a per-τ runner.  Planning is
pure — no index is built here — so a plan can also be inspected to
predict how many distinct builds a batch will trigger
(:func:`distinct_index_keys`).

Backend dispatch goes through the registry
(:mod:`repro.backends`) rather than the if/elif chains of earlier
revisions: :meth:`~repro.backends.registry.BackendRegistry.resolve`
validates the kind/backend/metric combination, resolves
``backend="auto"`` through the cost model (exact ℓ∞ promotion
included), and the chosen descriptor's hooks emit the cache key and
builder.  For every pre-existing explicit backend name the emitted
:class:`~repro.engine.cache.IndexKey` is bit-identical to the
historical planner's, so caches populated before the registry existed
stay valid (asserted by ``tests/test_backends.py``).

Validation rules the registry enforces (superset of the ISSUE 1 fix):

* ``triangles`` with ``backend="linf-exact"`` or ``exact=True``
  **requires** the ℓ∞ metric and raises
  :class:`~repro.errors.ValidationError` otherwise;
* ``triangles`` with ``backend="auto"`` on an ℓ∞ input is promoted to
  the exact solver unless ``exact=False``;
* pair and pattern kinds reject ``backend="linf-exact"`` outright,
  naming the backends that do serve them (they used to coerce it to
  ``auto`` silently);
* an explicit backend whose metric predicate rejects the dataset's
  metric (e.g. ``grid`` under an opaque function metric) fails at plan
  time, naming the usable alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..backends.registry import BackendRegistry, default_registry
from ..errors import ValidationError
from ..types import TemporalPointSet
from .cache import IndexKey
from .spec import PATTERN_KINDS, QuerySpec

__all__ = ["QueryPlan", "plan_query", "plan_batch", "distinct_index_keys"]


@dataclass(frozen=True)
class QueryPlan:
    """One executable query: spec + shared-index identity + callables."""

    order: int
    spec: QuerySpec
    key: IndexKey
    builder: Callable[[], Any]
    runner: Callable[[Any, float], list]


def _runner_for(spec: QuerySpec) -> Callable[[Any, float], list]:
    """The per-τ report call — kind-specific, backend-agnostic.

    Every backend serving a kind exposes the same query surface
    (``query(tau)``, ``query(tau, kappa)``, or the pattern iterators),
    so runners key on the spec alone and a cached index answers any
    spec that shares its key.
    """
    if spec.kind == "pairs-union":
        kappa = spec.kappa
        return lambda index, tau: index.query(tau, kappa)
    if spec.kind in PATTERN_KINDS:
        m = spec.m
        iter_name = {
            "cliques": "iter_cliques",
            "paths": "iter_paths",
            "stars": "iter_stars",
        }[spec.kind]
        return lambda index, tau: list(getattr(index, iter_name)(m, tau))
    return lambda index, tau: index.query(tau)


def plan_query(
    order: int,
    spec: QuerySpec,
    tps: TemporalPointSet,
    registry: Optional[BackendRegistry] = None,
) -> QueryPlan:
    """Resolve one spec against a dataset (validates, never builds).

    ``registry`` defaults to the process-wide
    :func:`~repro.backends.registry.default_registry`; passing another
    instance scopes dispatch (and any custom backends or recalibrated
    cost model) to this call.
    """
    reg = registry if registry is not None else default_registry()
    descriptor = reg.resolve(spec, tps).descriptor
    return QueryPlan(
        order=order,
        spec=spec,
        key=descriptor.index_identity(spec, tps.fingerprint()),
        builder=descriptor.make_builder(spec, tps),
        runner=_runner_for(spec),
    )


def plan_batch(
    specs: Sequence[QuerySpec],
    tps: TemporalPointSet,
    registry: Optional[BackendRegistry] = None,
) -> List[QueryPlan]:
    """Plan every spec of a batch against one dataset.

    Validation errors carry the batch position so a bad entry in a
    40-query file is easy to locate.
    """
    plans: List[QueryPlan] = []
    for order, spec in enumerate(specs):
        try:
            plans.append(plan_query(order, spec, tps, registry=registry))
        except ValidationError as exc:
            raise ValidationError(f"query #{order}: {exc}") from exc
    return plans


def distinct_index_keys(plans: Sequence[QueryPlan]) -> Tuple[IndexKey, ...]:
    """The distinct indexes a batch will build (in first-use order)."""
    seen: dict = {}
    for plan in plans:
        seen.setdefault(plan.key, None)
    return tuple(seen)
