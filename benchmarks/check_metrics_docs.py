#!/usr/bin/env python3
"""Two-way check: ``docs/metrics.md`` ⇔ the live ``/metrics`` exposition.

Boots a real 2-worker router fleet (whose fleet scrape contains every
serve-tier family re-exported from the workers plus the router's own),
scrapes ``GET /metrics`` through the strict parser, and compares the
family set — names *and* types — against the tables in
``docs/metrics.md``:

* a family exported live but missing from the docs fails the build
  (new metrics must be documented);
* a family documented but absent from the live scrape fails the build
  (stale docs rows must be deleted);
* a type column disagreeing with the live ``# TYPE`` fails the build.

Exits non-zero with a per-name report on any mismatch. Run it from the
repo root::

    PYTHONPATH=src python benchmarks/check_metrics_docs.py
"""

from __future__ import annotations

import http.client
import os
import re
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.obs import parse_exposition  # noqa: E402
from repro.router import start_router_thread  # noqa: E402

DOCS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "docs", "metrics.md"
)

#: A docs table row: | `name` | type | labels | meaning |
_ROW = re.compile(r"^\|\s*`([a-z_]+)`\s*\|\s*(counter|gauge|histogram)\s*\|")


def documented_families(path: str) -> dict:
    out = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            match = _ROW.match(line)
            if match:
                out[match.group(1)] = match.group(2)
    return out


def live_families() -> dict:
    handle = start_router_thread(workers=2, probe_interval=0.5)
    try:
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            assert resp.status == 200, resp.status
            families = parse_exposition(resp.read().decode())
        finally:
            conn.close()
    finally:
        handle.stop()
    return {name: family.type for name, family in families.items()}


def main() -> int:
    docs = documented_families(DOCS_PATH)
    live = live_families()
    if not docs:
        print(f"FAIL: no metric rows parsed from {DOCS_PATH}", file=sys.stderr)
        return 1

    problems = []
    for name in sorted(set(live) - set(docs)):
        problems.append(f"exported but undocumented: {name} ({live[name]})")
    for name in sorted(set(docs) - set(live)):
        problems.append(f"documented but not exported: {name} ({docs[name]})")
    for name in sorted(set(docs) & set(live)):
        if docs[name] != live[name]:
            problems.append(
                f"type mismatch for {name}: docs say {docs[name]}, "
                f"exposition says {live[name]}"
            )

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        f"metrics docs check: {len(docs)} families documented, "
        f"{len(live)} exported, in sync"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
