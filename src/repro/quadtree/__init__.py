"""Quadtree/grid decomposition for lp metrics (Remark 1, Appendix D.1)."""

from .tree import GridDecomposition

__all__ = ["GridDecomposition"]
