"""Tests for explicit proximity graphs and graph classes."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines import adjacency_matrix
from repro.graphs import (
    ProximityGraph,
    as_temporal,
    build_proximity_graph,
    grid_graph_points,
    ring_graph_points,
    unit_interval_graph_points,
)

from conftest import random_tps


class TestProximityGraph:
    @pytest.mark.parametrize("metric", ["l2", "l1", "linf"])
    def test_edges_match_adjacency(self, metric):
        tps = random_tps(n=80, seed=3, metric=metric)
        graph = build_proximity_graph(tps)
        adj = adjacency_matrix(tps)
        want = {(i, j) for i in range(tps.n) for j in range(i + 1, tps.n) if adj[i, j]}
        assert set(graph.edges) == want

    def test_callable_metric_fallback(self):
        tps = random_tps(n=40, seed=5)
        custom = TemporalPointSet(
            tps.points,
            tps.starts,
            tps.ends,
            metric=lambda x, y: float(np.sqrt(((x - y) ** 2).sum())),
        )
        g1 = build_proximity_graph(custom)
        g2 = build_proximity_graph(tps)
        assert set(g1.edges) == set(g2.edges)

    def test_triangle_listing_matches_brute(self):
        tps = random_tps(n=70, seed=7)
        graph = build_proximity_graph(tps)
        adj = adjacency_matrix(tps)
        want = set()
        for a in range(tps.n):
            for b in range(a + 1, tps.n):
                if not adj[a, b]:
                    continue
                for c in range(b + 1, tps.n):
                    if adj[a, c] and adj[b, c]:
                        want.add((a, b, c))
        got = list(graph.triangles())
        assert len(got) == len(set(got))
        assert set(got) == want

    def test_degrees(self):
        g = ProximityGraph(3, [(0, 1), (1, 2)])
        assert g.degree(1) == 2 and g.degree(0) == 1
        assert sorted(g.neighbors(1)) == [0, 2]
        assert g.m == 2

    def test_to_networkx(self):
        g = ProximityGraph(4, [(0, 1), (2, 3)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4 and nxg.number_of_edges() == 2


class TestGraphClasses:
    def test_grid_graph_is_grid(self):
        pts = grid_graph_points(3, 4)
        tps = as_temporal(pts, metric="l1")
        graph = build_proximity_graph(tps)
        # A rows x cols grid has rows*(cols-1) + cols*(rows-1) edges.
        assert graph.m == 3 * 3 + 4 * 2

    def test_grid_validation(self):
        with pytest.raises(ValidationError):
            grid_graph_points(0, 3)

    def test_unit_interval_graph(self):
        pts = unit_interval_graph_points([0.0, 0.8, 2.5, 3.2])
        tps = as_temporal(pts)
        graph = build_proximity_graph(tps)
        assert set(graph.edges) == {(0, 1), (2, 3)}

    def test_unit_interval_validation(self):
        with pytest.raises(ValidationError):
            unit_interval_graph_points([])

    def test_ring_graph(self):
        pts = ring_graph_points(8)
        tps = as_temporal(pts)
        graph = build_proximity_graph(tps)
        assert graph.m == 8
        for v in range(8):
            assert graph.degree(v) == 2

    def test_ring_validation(self):
        with pytest.raises(ValidationError):
            ring_graph_points(2)

    def test_as_temporal_defaults(self):
        tps = as_temporal(np.zeros((5, 2)), horizon=7.0)
        assert np.all(tps.starts == 0) and np.all(tps.ends == 7.0)
