"""Extra coverage for grid hashing, diagnostics and the validator."""

import numpy as np
import pytest

from repro import ValidationError
from repro.covertree import build_hierarchy, check_invariants
from repro.geometry import (
    UniformGrid,
    doubling_dimension_estimate,
    expansion_constant_estimate,
    get_metric,
    spread,
)
from repro.quadtree import GridDecomposition

from conftest import random_tps


class TestUniformGrid:
    def test_rejects_bad_side(self):
        with pytest.raises(ValidationError):
            UniformGrid(np.zeros((3, 2)), 0.0)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            UniformGrid(np.zeros(5), 1.0)

    def test_cell_assignment(self):
        pts = np.array([[0.1, 0.1], [0.9, 0.9], [1.1, 0.1]])
        grid = UniformGrid(pts, 1.0)
        assert grid.cell_of(pts[0]) == (0, 0)
        assert grid.cell_of(pts[2]) == (1, 0)
        assert sorted(grid.ids_in_cell((0, 0))) == [0, 1]
        assert grid.n_cells == 2

    @pytest.mark.parametrize("metric_name", ["l1", "l2", "linf"])
    def test_neighbors_within_exact(self, metric_name):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 5, size=(120, 2))
        m = get_metric(metric_name)
        grid = UniformGrid(pts, 0.7)
        for i in (0, 17, 56):
            got = sorted(grid.neighbors_within(pts[i], 1.0, m))
            want = sorted(np.nonzero(m.dists(pts, pts[i]) <= 1.0)[0].tolist())
            assert got == want

    def test_pairs_within_matches_brute(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 4, size=(60, 2))
        m = get_metric("l2")
        grid = UniformGrid(pts, 1.0)
        got = sorted(grid.pairs_within(1.0, m))
        want = sorted(
            (i, j)
            for i in range(60)
            for j in range(i + 1, 60)
            if m.dist(pts[i], pts[j]) <= 1.0
        )
        assert got == want

    def test_candidates_superset(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 10, size=(100, 3))
        grid = UniformGrid(pts, 0.5)
        m = get_metric("l2")
        for i in (3, 42):
            cand = set(grid.candidates_within(pts[i], 1.2))
            exact = set(np.nonzero(m.dists(pts, pts[i]) <= 1.2)[0].tolist())
            assert exact <= cand


class TestDiagnostics:
    def test_spread_two_points(self):
        assert spread(np.array([[0.0], [2.0]])) == 1.0  # max == min

    def test_spread_scales(self):
        pts = np.array([[0.0], [1.0], [100.0]])
        assert spread(pts) == pytest.approx(100.0)

    def test_spread_ignores_duplicates(self):
        # Zero distances are excluded from the minimum (otherwise any
        # duplicate would make the diagnostic infinite and useless).
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        assert spread(pts) == pytest.approx(1.0)

    def test_spread_all_identical(self):
        pts = np.zeros((4, 2))
        assert spread(pts) == 1.0

    def test_doubling_dim_line_vs_plane(self):
        rng = np.random.default_rng(0)
        line = np.column_stack([rng.uniform(0, 100, 400), np.zeros(400)])
        plane = rng.uniform(0, 20, size=(400, 2))
        assert doubling_dimension_estimate(line, n_centers=10) < (
            doubling_dimension_estimate(plane, n_centers=10)
        )

    def test_expansion_constant_positive(self):
        tps = random_tps(n=100, seed=2)
        c = expansion_constant_estimate(tps.points, n_centers=8)
        assert c >= 1.0

    def test_empty_points_rejected(self):
        with pytest.raises(ValidationError):
            spread(np.zeros((0, 2)))


class TestValidator:
    def test_detects_separation_violation(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 5, size=(50, 2))
        m = get_metric("l2")
        h = build_hierarchy(pts, m, resolution=0.25)
        # Corrupt: add a rep too close to an existing one.
        lvl = h.levels[1]
        extra = lvl.rep_ids[0]
        # duplicate the same rep id -> zero separation
        lvl.rep_ids.append(extra)
        problems = check_invariants(h, pts, m)
        assert any("separation" in p for p in problems)

    def test_detects_nesting_violation(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 5, size=(50, 2))
        m = get_metric("l2")
        h = build_hierarchy(pts, m, resolution=0.25)
        top = h.levels[-1]
        below_ids = set(h.levels[-2].rep_ids)
        outsider = next(i for i in range(len(pts)) if i not in below_ids)
        top.rep_ids.append(outsider)
        problems = check_invariants(h, pts, m)
        assert any("nesting" in p for p in problems)


class TestGridDecompositionExtra:
    def test_rejects_non_lp_metric(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            GridDecomposition(np.zeros((3, 2)), lambda x, y: 0.0, 0.25)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValidationError):
            GridDecomposition(np.zeros((3, 2)), "l2", -1.0)

    def test_groups_radius_bound_holds(self):
        tps = random_tps(n=80, seed=3)
        dec = GridDecomposition(tps.points, tps.metric, 0.2)
        for g in dec.groups:
            d = tps.metric.dists(tps.points[g.member_ids], g.rep)
            assert float(d.max()) <= 0.2 + 1e-9

    def test_covers_unit_ball(self):
        tps = random_tps(n=90, seed=4)
        dec = GridDecomposition(tps.points, tps.metric, 0.15)
        for p in range(0, 90, 13):
            cand = dec.candidate_groups(tps.points[p], 1.0)
            covered = {i for g in cand for i in dec.groups[g].member_ids}
            d = tps.metric.dists(tps.points, tps.points[p])
            assert set(np.nonzero(d <= 1.0)[0].tolist()) <= covered
