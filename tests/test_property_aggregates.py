"""Hypothesis property tests for the aggregate-pair solvers (Section 5)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SumPairIndex, TemporalPointSet, UnionPairIndex
from repro.baselines.brute_pairs import (
    brute_sum_pairs,
    brute_union_pairs,
    max_kappa_coverage,
)

FACTOR = 1.0 - 1.0 / np.e

coords = st.integers(0, 5).map(lambda v: v / 2.0)
times = st.integers(0, 10).map(float)
durs = st.integers(0, 8).map(float)


@st.composite
def instances(draw, max_n=12):
    n = draw(st.integers(4, max_n))
    pts = [[draw(coords), draw(coords)] for _ in range(n)]
    starts = [draw(times) for _ in range(n)]
    ends = [s + draw(durs) for s in starts]
    return np.array(pts), np.array(starts), np.array(ends)


class TestSumProperties:
    @given(instances(), st.sampled_from([1.0, 2.0, 4.0]))
    @settings(max_examples=50, deadline=None)
    def test_sandwich(self, inst, tau):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        got = {r.key for r in SumPairIndex(tps, epsilon=0.5).query(tau)}
        must = brute_sum_pairs(tps, tau, threshold=1.0)
        may = brute_sum_pairs(tps, tau, threshold=1.5 + 1e-6)
        assert must <= got <= may

    @given(instances())
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_tau(self, inst):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        idx = SumPairIndex(tps, epsilon=0.5)
        loose = {r.key for r in idx.query(1.0)}
        tight = {r.key for r in idx.query(4.0)}
        assert tight <= loose


class TestUnionProperties:
    @given(instances(), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_guarantees(self, inst, kappa):
        pts, starts, ends = inst
        tau = 3.0
        tps = TemporalPointSet(pts, starts, ends)
        got = {r.key for r in UnionPairIndex(tps, epsilon=0.5).query(tau, kappa)}
        must = brute_union_pairs(tps, tau, kappa, threshold=1.0)
        may = brute_union_pairs(
            tps, FACTOR * tau - 1e-9, kappa, threshold=1.5 + 1e-6
        )
        assert must <= got <= may

    @given(instances())
    @settings(max_examples=25, deadline=None)
    def test_greedy_never_exceeds_window(self, inst):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        idx = UnionPairIndex(tps, epsilon=0.5)
        rng = np.random.default_rng(0)
        for _ in range(5):
            p, q = rng.integers(0, tps.n, size=2)
            if p == q:
                continue
            window = max(
                0.0,
                min(float(ends[p]), float(ends[q]))
                - max(float(starts[p]), float(starts[q])),
            )
            assert idx.union_score(int(p), int(q), 3) <= window + 1e-9


class TestCoverageDPProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 8)).map(
                lambda t: (float(t[0]), float(t[0] + t[1]))
            ),
            max_size=7,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_bounds(self, ivs, kappa):
        window = (2.0, 16.0)
        opt = max_kappa_coverage(ivs, window, kappa)
        assert 0.0 <= opt <= window[1] - window[0] + 1e-9
        # Monotone in kappa.
        assert opt <= max_kappa_coverage(ivs, window, kappa + 1) + 1e-9
        # At kappa >= len(ivs) the DP reaches the full union.
        from repro import Interval, union_length

        clipped = [
            Interval(max(lo, window[0]), min(hi, window[1]))
            for lo, hi in ivs
            if min(hi, window[1]) > max(lo, window[0])
        ]
        full = union_length(clipped)
        assert abs(max_kappa_coverage(ivs, window, max(len(ivs), 1)) - full) < 1e-9
