"""Parser for the compact JSON / text forms of the pattern DSL.

Two interchangeable surface syntaxes produce the same
:mod:`repro.lang.ast` tree:

**JSON form** — one mapping per node, with exactly one *head* key
(``triangles``, ``clique``, ``path``, ``star``, ``pairs``, ``seq``,
``all``) plus optional modifier keys (``tau``, ``dur``, and ``gap``
for ``seq``)::

    {"seq": [{"pairs": {"agg": "sum"}},
             {"pairs": {"agg": "sum"}}],
     "gap": [0, 5]}

**Text form** — the same tree as a call expression (what
``repro query --pattern`` accepts on a shell line)::

    seq(pairs(agg=sum), pairs(agg=sum), gap=[0,5])
    all(clique(m=4), pairs(agg=union, kappa=8))
    triangles(tau=3, dur=[2,10])

:func:`parse_pattern` accepts either form (a mapping, a string —
JSON when it starts with ``{`` — or an already-built node) and
returns the validated AST root.  All failures raise
:class:`~repro.errors.ValidationError` with the offending fragment
named, so batch files and HTTP payloads fail with actionable messages
instead of tracebacks.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import ValidationError
from .ast import (
    AllNode,
    PairsNode,
    PatternNode,
    SeqNode,
    ShapeNode,
    TrianglesNode,
)

__all__ = ["parse_pattern", "node_from_json"]

#: Head keyword → whether the head's value is a child list (combinator).
_HEADS = {
    "triangles": False,
    "clique": False,
    "path": False,
    "star": False,
    "pairs": False,
    "seq": True,
    "all": True,
}

_MODIFIERS = ("tau", "dur", "gap")


# ----------------------------------------------------------------------
# JSON form
# ----------------------------------------------------------------------
def node_from_json(data: Any) -> PatternNode:
    """Build one AST node from its JSON mapping."""
    if not isinstance(data, Mapping):
        raise ValidationError(f"pattern node must be a mapping, got {data!r}")
    heads = [k for k in data if k in _HEADS]
    if len(heads) != 1:
        raise ValidationError(
            f"pattern node needs exactly one of {', '.join(_HEADS)}; "
            f"got keys {sorted(data)}"
        )
    head = heads[0]
    extra = set(data) - {head} - set(_MODIFIERS)
    if extra:
        raise ValidationError(
            f"unknown key(s) {sorted(extra)} on {head!r} node; "
            f"expected a subset of {sorted(_MODIFIERS)}"
        )
    if "gap" in data and head != "seq":
        raise ValidationError("gap is only valid on seq nodes")
    mods: Dict[str, Any] = {
        "tau": data.get("tau"),
        "dur": tuple(data["dur"]) if isinstance(data.get("dur"), (list, tuple)) else data.get("dur"),
    }
    body = data[head]
    if _HEADS[head]:
        if not isinstance(body, (list, tuple)):
            raise ValidationError(
                f"{head} takes a list of sub-patterns, got {body!r}"
            )
        parts = tuple(node_from_json(child) for child in body)
        if head == "seq":
            gap = data.get("gap")
            if isinstance(gap, (list, tuple)):
                gap = tuple(gap)
            return SeqNode(parts=parts, gap=gap, **mods)
        return AllNode(parts=parts, **mods)
    if body is None:
        body = {}
    if not isinstance(body, Mapping):
        raise ValidationError(
            f"{head} parameters must be a mapping, got {body!r}"
        )
    params = dict(body)
    if head == "triangles":
        exact = params.pop("exact", None)
        _reject_params(params, head, ("exact",))
        return TrianglesNode(exact=exact, **mods)
    if head == "pairs":
        agg = params.pop("agg", "sum")
        kappa = params.pop("kappa", None)
        _reject_params(params, head, ("agg", "kappa"))
        return PairsNode(agg=agg, kappa=kappa, **mods)
    m = params.pop("m", 3)
    _reject_params(params, head, ("m",))
    return ShapeNode(shape=head, m=m, **mods)


def _reject_params(leftover: Dict[str, Any], head: str, known: Tuple[str, ...]) -> None:
    if leftover:
        raise ValidationError(
            f"unknown {head} parameter(s) {sorted(leftover)}; "
            f"expected a subset of {sorted(known)}"
        )


# ----------------------------------------------------------------------
# Text form: NAME '(' [arg {',' arg}] ')' where arg is a nested node or
# key=value; values are numbers, bare words, booleans or [lo, hi].
# ----------------------------------------------------------------------
_TOKEN = re.compile(
    r"\s*(?:(?P<num>-?\d+(?:\.\d+)?)|(?P<word>[A-Za-z_][A-Za-z0-9_-]*)"
    r"|(?P<punct>[(),=\[\]]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ValidationError(
                f"pattern syntax error at {text[pos:pos + 12]!r} (offset {pos})"
            )
        pos = match.end()
        for kind in ("num", "word", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _TextParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, kind: str, value: Optional[str] = None) -> str:
        token = self.peek()
        if token is None or token[0] != kind or (value is not None and token[1] != value):
            want = value if value is not None else kind
            got = token[1] if token else "end of pattern"
            raise ValidationError(
                f"pattern syntax error: expected {want!r}, got {got!r}"
            )
        self.pos += 1
        return token[1]

    # ------------------------------------------------------------------
    def parse(self) -> PatternNode:
        node = self.node()
        if self.peek() is not None:
            raise ValidationError(
                f"pattern syntax error: trailing input {self.peek()[1]!r}"
            )
        return node

    def node(self) -> PatternNode:
        head = self.take("word")
        if head not in _HEADS:
            raise ValidationError(
                f"unknown pattern head {head!r}; expected one of {', '.join(_HEADS)}"
            )
        data: Dict[str, Any] = {head: [] if _HEADS[head] else {}}
        if self.peek() == ("punct", "("):
            self.take("punct", "(")
            while self.peek() != ("punct", ")"):
                self.argument(head, data)
                if self.peek() == ("punct", ","):
                    self.take("punct", ",")
                elif self.peek() != ("punct", ")"):
                    raise ValidationError(
                        "pattern syntax error: expected ',' or ')' in "
                        f"{head} arguments"
                    )
            self.take("punct", ")")
        return node_from_json(data)

    def argument(self, head: str, data: Dict[str, Any]) -> None:
        token = self.peek()
        if token is None:
            raise ValidationError("pattern syntax error: unterminated arguments")
        kind, value = token
        following = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
        if kind == "word" and following == ("punct", "="):
            key = self.take("word")
            self.take("punct", "=")
            parsed = self.value()
            if key in _MODIFIERS:
                data[key] = parsed
            else:
                if _HEADS[head]:
                    raise ValidationError(
                        f"{head} takes sub-patterns and modifiers, "
                        f"not parameter {key!r}"
                    )
                data[head][key] = parsed
            return
        if kind == "word" and value in _HEADS:
            if not _HEADS[head]:
                raise ValidationError(
                    f"{head} is a primitive and takes no sub-patterns"
                )
            data[head].append(self.node().to_json())
            return
        raise ValidationError(
            f"pattern syntax error: unexpected {value!r} in {head} arguments"
        )

    def value(self) -> Any:
        token = self.peek()
        if token is None:
            raise ValidationError("pattern syntax error: missing value after '='")
        kind, value = token
        if kind == "num":
            self.take("num")
            return float(value) if "." in value else int(value)
        if kind == "word":
            self.take("word")
            return {"true": True, "false": False}.get(value.lower(), value)
        if token == ("punct", "["):
            self.take("punct", "[")
            lo = self.number()
            self.take("punct", ",")
            hi = self.number()
            self.take("punct", "]")
            return [lo, hi]
        raise ValidationError(f"pattern syntax error: bad value {value!r}")

    def number(self) -> float:
        raw = self.take("num")
        return float(raw)


# ----------------------------------------------------------------------
def parse_pattern(payload: Union[str, Mapping[str, Any], PatternNode]) -> PatternNode:
    """Parse a pattern payload into its AST root (idempotent on nodes)."""
    if isinstance(payload, PatternNode):
        return payload
    if isinstance(payload, Mapping):
        return node_from_json(payload)
    if isinstance(payload, str):
        text = payload.strip()
        if not text:
            raise ValidationError("pattern must not be empty")
        if text.startswith("{"):
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"pattern is not valid JSON: {exc}") from exc
            return node_from_json(data)
        return _TextParser(text).parse()
    raise ValidationError(
        f"pattern must be a mapping, a string or a pattern node, got {payload!r}"
    )
