"""Cross-agreement tests among the baseline implementations.

If the three independent exact listers agree with each other and the
index satisfies the sandwich against them, a bug would have to be
replicated identically in all implementations to slip through.
"""

import pytest

from repro.baselines import (
    RecomputeIncrementalBaseline,
    brute_force_triangle_keys,
    brute_force_triangles,
    durable_edges,
    durable_join_triangles,
    explicit_graph_triangles,
)
from repro.baselines.brute_incremental import brute_delta_keys

from conftest import random_tps


class TestExactListersAgree:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("tau", [1.0, 3.0, 7.0])
    def test_three_way_agreement(self, seed, tau):
        tps = random_tps(n=70, seed=seed)
        brute = brute_force_triangle_keys(tps, tau)
        explicit = {r.key for r in explicit_graph_triangles(tps, tau)}
        join = {r.key for r in durable_join_triangles(tps, tau)}
        assert brute == explicit == join

    @pytest.mark.parametrize("metric", ["l1", "linf"])
    def test_other_metrics(self, metric):
        tps = random_tps(n=55, seed=11, metric=metric)
        brute = brute_force_triangle_keys(tps, 2.0)
        explicit = {r.key for r in explicit_graph_triangles(tps, 2.0)}
        join = {r.key for r in durable_join_triangles(tps, 2.0)}
        assert brute == explicit == join

    def test_lifespans_agree(self):
        tps = random_tps(n=50, seed=2)
        by_key_a = {r.key: r.lifespan for r in brute_force_triangles(tps, 2.0)}
        by_key_b = {r.key: r.lifespan for r in explicit_graph_triangles(tps, 2.0)}
        assert by_key_a == by_key_b

    def test_anchor_convention_agrees(self):
        tps = random_tps(n=50, seed=4)
        a = {(r.anchor, r.q, r.s) for r in brute_force_triangles(tps, 2.0)}
        b = {(r.anchor, r.q, r.s) for r in explicit_graph_triangles(tps, 2.0)}
        c = {(r.anchor, r.q, r.s) for r in durable_join_triangles(tps, 2.0)}
        assert a == b == c


class TestDurableEdges:
    def test_durable_edges_subset_of_proximity(self):
        tps = random_tps(n=60, seed=5)
        loose = durable_edges(tps, 1.0)
        tight = durable_edges(tps, 8.0)
        assert set(tight) <= set(loose)
        for a, b in tight:
            lo = max(tps.starts[a], tps.starts[b])
            hi = min(tps.ends[a], tps.ends[b])
            assert hi - lo >= 8.0


class TestRecomputeBaseline:
    def test_matches_delta_keys(self):
        tps = random_tps(n=50, seed=8)
        base = RecomputeIncrementalBaseline(tps)
        prev = float("inf")
        for tau in (7.0, 4.0, 2.0):
            got = {r.key for r in base.query(tau)}
            assert got == brute_delta_keys(tps, tau, prev)
            prev = tau

    def test_upward_returns_empty(self):
        tps = random_tps(n=40, seed=9)
        base = RecomputeIncrementalBaseline(tps)
        base.query(2.0)
        assert base.query(5.0) == []
