#!/usr/bin/env python3
"""Render the benchmark JSON into the EXPERIMENTS.md evidence table.

Usage: python benchmarks/summarize.py [bench_results.json]
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def main(path: str = "bench_results.json") -> None:
    data = json.load(open(path))
    groups = defaultdict(list)
    for bench in data["benchmarks"]:
        groups[bench["group"] or "(ungrouped)"].append(bench)
    for group in sorted(groups):
        print(f"\n### {group}")
        rows = sorted(groups[group], key=lambda b: b["stats"]["mean"])
        for b in rows:
            mean_ms = b["stats"]["mean"] * 1000
            extra = ", ".join(
                f"{k}={v}" for k, v in sorted(b.get("extra_info", {}).items())
            )
            name = b["name"].split("[")[0] + (
                "[" + b["name"].split("[", 1)[1] if "[" in b["name"] else ""
            )
            print(f"  {name:58s} {mean_ms:10.1f} ms   {extra}")


if __name__ == "__main__":
    main(*sys.argv[1:])
