"""Tests for the multi-process routing tier (ISSUE 5 tentpole).

Placement and manifest units are pure and fast; the protocol and
failover classes drive a real router over real sockets, with real
``repro serve`` worker *subprocesses* — killing one mid-stream is the
whole point of the tier, so the tests kill one mid-stream.
"""

import http.client
import json
import os
import signal
import socket
import time
from collections import Counter

import pytest

from repro.backends.cost import CostModel
from repro.errors import ValidationError
from repro.router import (
    PlacementManifest,
    WorkerCandidate,
    choose_worker,
    features_from_spec,
    start_router_thread,
)
from repro.router.placement import placement_scores

SOCIAL_SPEC = {"workload": "social", "n": 90, "seed": 5}
COAUTHOR_SPEC = {"workload": "coauthor", "n": 80, "seed": 3}

# Verified to rendezvous-hash onto distinct slots of a homogeneous
# 2-worker fleet (placement is deterministic, so this cannot rot).
SPLIT_NAMES = ("social", "coauthor")


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def request(handle, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def request_json(handle, method, path, body=None, timeout=60):
    status, data = request(handle, method, path, body, timeout=timeout)
    return status, json.loads(data)


def query_lines(handle, dataset, queries, timeout=60):
    status, data = request(
        handle,
        "POST",
        "/query",
        {"dataset": dataset, "queries": queries, "include_records": False},
        timeout=timeout,
    )
    if status != 200:
        return status, json.loads(data)
    return status, [json.loads(line) for line in data.decode().strip().split("\n")]


def wait_for_recovery(handle, dataset, deadline_seconds=30.0):
    """Poll a one-query batch until it succeeds; returns elapsed seconds."""
    t0 = time.monotonic()
    last = None
    while time.monotonic() - t0 < deadline_seconds:
        try:
            status, lines = query_lines(
                handle, dataset, [{"kind": "triangles", "tau": 2.0}], timeout=15
            )
        except OSError as exc:  # pragma: no cover - transient socket races
            last = exc
            time.sleep(0.2)
            continue
        if status == 200 and lines[-1].get("ok"):
            return time.monotonic() - t0
        last = (status, lines)
        time.sleep(0.2)
    raise AssertionError(f"dataset {dataset!r} never recovered: {last!r}")


# ----------------------------------------------------------------------
# Placement (pure units)
# ----------------------------------------------------------------------
class TestPlacement:
    model = CostModel()
    features = features_from_spec({"n": 200, "dim": 2, "metric": "l2"})

    def two(self):
        return [WorkerCandidate("worker-0"), WorkerCandidate("worker-1")]

    def test_deterministic_and_order_invariant(self):
        cands = self.two()
        first = choose_worker("ds", self.features, cands, self.model)
        assert first == choose_worker("ds", self.features, cands, self.model)
        assert first == choose_worker(
            "ds", self.features, list(reversed(cands)), self.model
        )

    def test_spreads_across_workers(self):
        cands = [WorkerCandidate(f"worker-{i}") for i in range(3)]
        counts = Counter(
            choose_worker(f"ds-{i}", self.features, cands, self.model)
            for i in range(120)
        )
        assert set(counts) == {"worker-0", "worker-1", "worker-2"}
        assert min(counts.values()) > 10  # no pathological skew

    def test_minimal_churn_on_worker_removal(self):
        """Rendezvous property: dropping a worker only moves its own."""
        three = [WorkerCandidate(f"worker-{i}") for i in range(3)]
        names = [f"ds-{i}" for i in range(60)]
        before = {
            n: choose_worker(n, self.features, three, self.model) for n in names
        }
        two = [c for c in three if c.worker != "worker-2"]
        for name in names:
            after = choose_worker(name, self.features, two, self.model)
            if before[name] != "worker-2":
                assert after == before[name]

    def test_cost_weight_biases_toward_cheaper_backend(self):
        grid_only = self.model.placement_weight(self.features, ["grid"])
        tree_only = self.model.placement_weight(self.features, ["cover-tree"])
        assert grid_only > tree_only  # grid is the cheaper backend
        het = [
            WorkerCandidate("worker-0", ("grid",)),
            WorkerCandidate("worker-1", ("cover-tree",)),
        ]
        counts = Counter(
            choose_worker(f"ds-{i}", self.features, het, self.model)
            for i in range(300)
        )
        assert counts["worker-0"] > counts["worker-1"]

    def test_scores_expose_every_candidate(self):
        scores = placement_scores("ds", self.features, self.two(), self.model)
        assert set(scores) == {"worker-0", "worker-1"}
        assert all(score > 0 for score in scores.values())

    def test_empty_pool_rejected(self):
        with pytest.raises(ValidationError):
            choose_worker("ds", self.features, [], self.model)

    def test_features_from_spec_defaults(self):
        features = features_from_spec({"csv": "points.csv"})
        assert features.n == 1 and features.dim == 2 and features.metric == "l2"
        features = features_from_spec({"n": "not-a-number", "metric": "linf"})
        assert features.n == 1 and features.metric == "linf"
        assert features_from_spec(None).dim == 2

    def test_split_names_really_split(self):
        placed = {
            name: choose_worker(
                name, features_from_spec({"n": 90}), self.two(), self.model
            )
            for name in SPLIT_NAMES
        }
        assert set(placed.values()) == {"worker-0", "worker-1"}


# ----------------------------------------------------------------------
# Manifest (pure units)
# ----------------------------------------------------------------------
class TestManifest:
    def test_record_get_remove(self):
        manifest = PlacementManifest()
        payload = {"name": "a", "dataset": {"n": 5}, "replace": True}
        assert manifest.record("a", "worker-0", payload) is None
        entry = manifest.get("a")
        assert entry.worker == "worker-0"
        assert "replace" not in entry.payload  # replay sets its own
        assert "a" in manifest and len(manifest) == 1
        old = manifest.record("a", "worker-1", payload)
        assert old.worker == "worker-0"
        assert manifest.placements() == {"a": "worker-1"}
        assert manifest.remove("a").worker == "worker-1"
        assert manifest.remove("a") is None and len(manifest) == 0

    def test_owned_by_filters(self):
        manifest = PlacementManifest()
        manifest.record("a", "worker-0", {"dataset": 1})
        manifest.record("b", "worker-1", {"dataset": 2})
        manifest.record("c", "worker-0", {"dataset": 3})
        assert {e.name for e in manifest.owned_by("worker-0")} == {"a", "c"}
        assert manifest.names() == ("a", "b", "c")

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = PlacementManifest(path)
        manifest.record("a", "worker-0", {"name": "a", "dataset": {"n": 5}})
        manifest.record("b", "worker-1", {"name": "b", "dataset": {"n": 7}})
        manifest.remove("b")
        reloaded = PlacementManifest(path)
        assert reloaded.placements() == {"a": "worker-0"}
        assert reloaded.get("a").payload["dataset"] == {"n": 5}

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {")
        with pytest.raises(ValidationError):
            PlacementManifest(str(path))
        path.write_text('{"datasets": [{"name": 3}]}')
        with pytest.raises(ValidationError):
            PlacementManifest(str(path))


# ----------------------------------------------------------------------
# Full stack: protocol over a live 2-worker fleet
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def router():
    handle = start_router_thread(workers=2, probe_interval=0.2)
    try:
        for name, spec in (("social", SOCIAL_SPEC), ("coauthor", COAUTHOR_SPEC)):
            status, doc = request_json(
                handle, "POST", "/datasets", {"name": name, "dataset": spec}
            )
            assert status == 201, doc
        yield handle
    finally:
        handle.stop()


class TestRouterProtocol:
    def test_health_reports_fleet(self, router):
        status, doc = request_json(router, "GET", "/health")
        assert status == 200 and doc["ok"] is True
        assert doc["workers"] == {"total": 2, "alive": 2}
        assert doc["datasets"] >= 2

    def test_two_datasets_land_on_distinct_workers(self, router):
        status, doc = request_json(router, "GET", "/stats")
        assert status == 200
        placements = doc["router"]["placement"]["datasets"]
        assert len({placements["social"], placements["coauthor"]}) == 2

    def test_metrics_fleet_scrape_relabels_workers(self, router):
        from repro.obs import counter_value, parse_exposition

        # Touch both datasets so both workers have served something
        # (they sit on distinct slots — asserted elsewhere).
        for name, tau in (("social", 2.0), ("coauthor", 15.0)):
            status, lines = query_lines(
                router, name, [{"kind": "pairs-sum", "tau": tau}]
            )
            assert status == 200 and lines[-1]["ok"]
        status, data = request(router, "GET", "/metrics")
        assert status == 200
        # The merged fleet exposition must itself be strictly valid.
        families = parse_exposition(data.decode())

        # Router-own families are unlabelled by worker...
        assert counter_value(families, "router_workers") == 2.0
        up = {
            dict(s.labels)["worker"]: s.value
            for s in families["router_worker_up"].samples
        }
        assert up == {"worker-0": 1.0, "worker-1": 1.0}
        # ...while every re-exported serve family carries the slot name.
        workers_seen = {
            dict(s.labels).get("worker")
            for s in families["serve_queries_total"].samples
        }
        assert workers_seen == {"worker-0", "worker-1"}
        assert counter_value(
            families, "serve_queries_total", {"worker": "worker-0"}
        ) + counter_value(
            families, "serve_queries_total", {"worker": "worker-1"}
        ) == counter_value(families, "serve_queries_total")
        # The query proxied above is visible end-to-end: once in the
        # router's own counter, once in the owning worker's.
        assert counter_value(families, "router_proxied_queries_total") >= 1.0
        assert counter_value(families, "serve_queries_total") >= 1.0
        assert counter_value(families, "router_worker_scrape_errors_total") == 0.0

    def test_register_reply_names_the_worker(self, router):
        status, doc = request_json(
            router,
            "POST",
            "/datasets",
            {"name": "extra", "dataset": dict(SOCIAL_SPEC, seed=9)},
        )
        assert status == 201
        assert doc["worker"].startswith("worker-")
        assert doc["registered"]["name"] == "extra"

    def test_query_streams_through_the_owning_worker(self, router):
        status, lines = query_lines(
            router,
            "social",
            [
                {"kind": "triangles", "taus": [1.5, 2.0], "label": "sweep"},
                {"kind": "pairs-sum", "tau": 2.0},
            ],
        )
        assert status == 200
        assert lines[0]["type"] == "batch-start" and lines[0]["queries"] == 2
        results = [ln for ln in lines if ln["type"] == "result"]
        assert [r["ok"] for r in results] == [True, True]
        assert lines[-1]["type"] == "batch-end" and lines[-1]["ok"] is True

    def test_record_lines_stream_through_unchanged(self, router):
        """Chunk-by-chunk relay: per-τ record lines arrive intact, and
        the router's answer is byte-equivalent to the owning worker's
        (same NDJSON documents, same order)."""
        status, data = request(
            router,
            "POST",
            "/query",
            {
                "dataset": "social",
                "queries": [{"kind": "triangles", "taus": [1.5, 2.0, 2.5]}],
                "include_records": True,
            },
        )
        assert status == 200
        lines = [json.loads(ln) for ln in data.decode().strip().split("\n")]
        records = [ln for ln in lines if ln["type"] == "records"]
        assert {r["tau"] for r in records} == {1.5, 2.0, 2.5}
        for r in records:
            assert len(r["records"]) == r["count"]
        assert lines[-1]["type"] == "batch-end" and lines[-1]["ok"] is True

    def test_unknown_dataset_is_404(self, router):
        status, doc = request_json(
            router, "POST", "/query",
            {"dataset": "nope", "queries": [{"kind": "triangles", "tau": 2}]},
        )
        assert status == 404 and "nope" in doc["error"]

    def test_duplicate_registration_conflicts(self, router):
        status, doc = request_json(
            router, "POST", "/datasets", {"name": "social", "dataset": SOCIAL_SPEC}
        )
        assert status == 409 and "already registered" in doc["error"]
        status, doc = request_json(
            router,
            "POST",
            "/datasets",
            {"name": "social", "dataset": SOCIAL_SPEC, "replace": True},
        )
        assert status == 201, doc

    def test_worker_errors_relay_with_status(self, router):
        status, doc = request_json(
            router, "POST", "/query",
            {"dataset": "social", "queries": [{"kind": "made-up", "tau": 2}]},
        )
        assert status == 400 and "made-up" in doc["error"]

    def test_stats_aggregates_workers_and_identity(self, router):
        # At least one served query on the *current* shard generation
        # (earlier tests may have replaced shards, resetting counters).
        status, lines = query_lines(
            router, "social", [{"kind": "triangles", "tau": 2.0}]
        )
        assert status == 200 and lines[-1]["ok"]
        status, doc = request_json(router, "GET", "/stats")
        assert status == 200
        assert set(doc["workers"]) == {"worker-0", "worker-1"}
        router_pid = os.getpid()
        for slot, entry in doc["workers"].items():
            assert entry["alive"] is True
            identity = entry["identity"]
            assert identity["pid"] not in (None, router_pid)  # real subprocess
            assert f'{identity["host"]}:{identity["port"]}' == entry["address"]
            assert identity["started_age_seconds"] >= 0
            server = entry["stats"]["server"]
            assert server["connections"]["opened"] >= 1
        assert doc["totals"]["queries_total"] >= 1
        assert doc["router"]["placement"]["policy"].startswith("cost-weighted")
        assert doc["router"]["proxy"]["queries"] >= 1

    def test_stats_aggregates_backend_counters(self, router):
        query_lines(router, "social", [{"kind": "triangles", "tau": 2.0}])
        status, doc = request_json(router, "GET", "/stats")
        assert status == 200
        backends = {}
        for entry in doc["workers"].values():
            for shard in entry["stats"]["shards"].values():
                for backend, counters in shard["backends"].items():
                    backends[backend] = counters
        assert backends, "no per-backend counters aggregated"
        assert all(c["queries"] >= 1 for c in backends.values())

    def test_datasets_listing_names_workers(self, router):
        status, doc = request_json(router, "GET", "/datasets")
        assert status == 200
        by_name = {d["name"]: d for d in doc["datasets"]}
        assert by_name["social"]["worker"].startswith("worker-")
        assert by_name["social"]["dataset"]["workload"] == "social"

    def test_delete_and_reregister_roundtrip(self, router):
        spec = dict(COAUTHOR_SPEC, seed=11)
        status, doc = request_json(
            router, "POST", "/datasets", {"name": "tmp-del", "dataset": spec}
        )
        assert status == 201
        status, doc = request_json(router, "DELETE", "/datasets/tmp-del")
        assert status == 200 and doc["removed"] == "tmp-del"
        assert doc["worker"].startswith("worker-")
        assert doc["dataset"]["name"] == "tmp-del"  # the worker's shard
        status, _ = request_json(
            router, "POST", "/query",
            {"dataset": "tmp-del", "queries": [{"kind": "triangles", "tau": 2}]},
        )
        assert status == 404
        status, doc = request_json(router, "DELETE", "/datasets/tmp-del")
        assert status == 404
        status, doc = request_json(
            router, "POST", "/datasets", {"name": "tmp-del", "dataset": spec}
        )
        assert status == 201
        status, lines = query_lines(
            router, "tmp-del", [{"kind": "triangles", "tau": 2.0}]
        )
        assert status == 200 and lines[-1]["ok"] is True
        request_json(router, "DELETE", "/datasets/tmp-del")

    def test_wrong_method_on_delete_path_is_405(self, router):
        status, _ = request_json(router, "GET", "/datasets/social")
        assert status == 405

    def test_delete_percent_encoded_name(self, router):
        """Names with spaces survive the router→worker DELETE hop (the
        router unquotes the request path and re-quotes for the worker)."""
        spec = {"workload": "uniform", "n": 30, "seed": 1}
        status, doc = request_json(
            router, "POST", "/datasets", {"name": "with space", "dataset": spec}
        )
        assert status == 201, doc
        status, doc = request_json(router, "DELETE", "/datasets/with%20space")
        assert status == 200 and doc["removed"] == "with space"
        assert doc["dataset"]["name"] == "with space"  # worker really freed it
        status, _ = request_json(router, "DELETE", "/datasets/with%20space")
        assert status == 404


# ----------------------------------------------------------------------
# Failover: the acceptance scenario
# ----------------------------------------------------------------------
class TestFailover:
    def test_kill_mid_stream_truncates_then_replay_recovers(self):
        """A worker killed under load is restarted with its datasets
        re-registered; the interrupted client sees a clean truncation."""
        handle = start_router_thread(workers=2, probe_interval=0.2)
        try:
            # Datasets on both workers: the survivor must keep serving.
            specs = {
                "social": {"workload": "social", "n": 300, "seed": 7},
                "coauthor": {"workload": "coauthor", "n": 80, "seed": 3},
            }
            for name, spec in specs.items():
                status, doc = request_json(
                    handle, "POST", "/datasets", {"name": name, "dataset": spec}
                )
                assert status == 201, doc
            status, lines = query_lines(
                handle, "social", [{"kind": "triangles", "taus": [1.0, 2.0]}]
            )
            assert status == 200 and lines[-1]["ok"]

            status, doc = request_json(handle, "GET", "/stats")
            owner = doc["router"]["placement"]["datasets"]["social"]
            other = doc["router"]["placement"]["datasets"]["coauthor"]
            assert owner != other
            victim_pid = doc["workers"][owner]["pid"]
            old_generation = doc["workers"][owner]["generation"]

            # A long sweep with records: enough stream left to kill into.
            taus = [round(0.5 + 0.05 * i, 2) for i in range(50)]
            body = json.dumps(
                {
                    "dataset": "social",
                    "queries": [{"kind": "triangles", "taus": taus}],
                    "include_records": True,
                }
            ).encode()
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=60
            )
            try:
                sock.sendall(
                    b"POST /query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n" % len(body) + body
                )
                buf = b""
                while b"batch-start" not in buf:
                    chunk = sock.recv(4096)
                    assert chunk, f"stream ended before batch-start: {buf!r}"
                    buf += chunk
                os.kill(victim_pid, signal.SIGKILL)
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    buf += chunk
            finally:
                sock.close()
            text = buf.decode("utf-8", "replace")
            # Clean truncation: stream just stops — no terminator, no
            # batch-end, and no second response spliced into the body.
            assert "batch-end" not in text
            assert not text.endswith("0\r\n\r\n")
            assert text.count("HTTP/1.1") == 1

            # The other worker's dataset keeps serving throughout.
            status, lines = query_lines(
                handle, "coauthor", [{"kind": "triangles", "tau": 15.0}]
            )
            assert status == 200 and lines[-1]["ok"]

            # Queries racing the dead worker answer 503 (never hang);
            # restart-with-replay then brings the dataset back.
            saw = Counter()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, payload = query_lines(
                    handle, "social",
                    [{"kind": "triangles", "tau": 2.0}], timeout=15,
                )
                saw[status] += 1
                if status == 200 and payload[-1].get("ok"):
                    break
                assert status in (200, 503), payload
                time.sleep(0.1)
            assert saw[200] >= 1, f"never recovered: {saw}"

            status, doc = request_json(handle, "GET", "/stats")
            worker = doc["workers"][owner]
            assert worker["alive"] is True
            assert worker["restarts"] >= 1
            assert worker["generation"] > old_generation
            assert worker["pid"] != victim_pid
            assert doc["router"]["restarts_total"] >= 1
            # Replay restored every dataset the manifest pins to the
            # slot — both placements are unchanged (slots are stable).
            assert doc["router"]["placement"]["datasets"]["social"] == owner
            shard_names = set(worker["stats"]["shards"])
            assert "social" in shard_names
        finally:
            handle.stop()

    def test_placement_is_deterministic_across_router_restarts(self, tmp_path):
        names = ["alpha", "beta", "gamma"]
        spec = {"workload": "social", "n": 40, "seed": 2}

        def boot_and_place():
            handle = start_router_thread(workers=2, probe_interval=0.3)
            try:
                for name in names:
                    status, doc = request_json(
                        handle, "POST", "/datasets",
                        {"name": name, "dataset": spec},
                    )
                    assert status == 201, doc
                status, doc = request_json(handle, "GET", "/stats")
                return doc["router"]["placement"]["datasets"]
            finally:
                handle.stop()

        first = boot_and_place()
        second = boot_and_place()
        assert first == second
        # ... and both match the pure placement function's prediction.
        candidates = [WorkerCandidate("worker-0"), WorkerCandidate("worker-1")]
        predicted = {
            name: choose_worker(
                name, features_from_spec(spec), candidates, CostModel()
            )
            for name in names
        }
        assert first == predicted

    def test_manifest_restores_datasets_across_router_restarts(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        spec = {"workload": "social", "n": 50, "seed": 4}
        handle = start_router_thread(
            workers=1, probe_interval=0.3, manifest_path=path
        )
        try:
            status, doc = request_json(
                handle, "POST", "/datasets", {"name": "forum", "dataset": spec}
            )
            assert status == 201, doc
        finally:
            handle.stop()

        # Fresh router, fresh workers — the manifest alone restores it.
        handle = start_router_thread(
            workers=1, probe_interval=0.3, manifest_path=path
        )
        try:
            status, lines = query_lines(
                handle, "forum", [{"kind": "triangles", "tau": 2.0}]
            )
            assert status == 200 and lines[-1]["ok"] is True
        finally:
            handle.stop()
