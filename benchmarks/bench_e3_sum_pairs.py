"""E3 — Theorem 5.1: AggDurablePair-SUM in near-linear time.

Query time should track ``n + OUT`` (constant-density workload), and
the indexed algorithm should dominate the quadratic witness-scan brute
force well before n = 1000.
"""

import pytest

from repro.baselines import brute_sum_pairs

from helpers import sum_index, workload

SIZES = [400, 800, 1600]
TAU = 8.0


@pytest.mark.parametrize("n", SIZES)
def test_sum_scaling(benchmark, n):
    idx = sum_index(n)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E3 SUM pairs: n sweep"


def test_sum_vs_brute(benchmark):
    tps = workload(400)
    result = benchmark.pedantic(
        brute_sum_pairs, args=(tps, TAU), rounds=2, iterations=1
    )
    benchmark.extra_info["algorithm"] = "brute-force"
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E3 SUM pairs vs brute (n=400)"


def test_sum_ours_at_brute_size(benchmark):
    idx = sum_index(400)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = "ours"
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E3 SUM pairs vs brute (n=400)"
