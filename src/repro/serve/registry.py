"""Sharded dataset registry for the serving front end.

Each registered dataset gets its own :class:`DatasetShard` — a private
:class:`~repro.engine.cache.IndexCache`, a private
:class:`~concurrent.futures.ThreadPoolExecutor`, and a bounded
admission queue.  The isolation is the point: a hot dataset saturating
its workers or churning its cache cannot evict another dataset's
indexes or starve its queries, and later horizontal sharding (one
registry per process) drops in without touching the solvers.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Union

from ..datasets import workload_from_spec
from ..engine import IndexCache
from ..errors import ReproError, ValidationError
from ..types import TemporalPointSet
from .bridge import AdmissionQueue

__all__ = [
    "UnknownDatasetError",
    "DuplicateDatasetError",
    "DatasetShard",
    "DatasetRegistry",
]

#: Default bound on concurrently admitted (queued + running) queries
#: per shard; requests past the bound are rejected, never buffered.
DEFAULT_QUEUE_LIMIT = 64

#: Default resident-index bound per shard.  Bounded — unlike the
#: engine's library default — because a long-lived server must not grow
#: without limit under a churning query mix.
DEFAULT_MAX_ENTRIES = 32


class UnknownDatasetError(ReproError, KeyError):
    """Raised when a query names a dataset that was never registered."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else ""


class DuplicateDatasetError(ValidationError):
    """Raised when a name is already registered (HTTP maps this to 409)."""


def _default_shard_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


class DatasetShard:
    """One registered dataset plus everything needed to serve it."""

    def __init__(
        self,
        name: str,
        tps: TemporalPointSet,
        spec: Optional[Mapping[str, Any]] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        self.name = name
        self.tps = tps
        self.spec = dict(spec) if spec is not None else None
        self.cache = IndexCache(max_entries=max_entries)
        self.workers = max_workers if max_workers is not None else _default_shard_workers()
        self.executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=f"shard-{name}"
        )
        self.admission = AdmissionQueue(queue_limit)
        # monotonic: uptime must survive wall-clock steps (NTP, DST,
        # manual adjustment) without jumping or going negative.
        self.created_monotonic = time.monotonic()
        self._lock = threading.Lock()
        self._queries_total = 0
        self._errors_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    def record_result(self, ok: bool) -> None:
        """Bump the served/failed counters for one finished query."""
        with self._lock:
            self._queries_total += 1
            if not ok:
                self._errors_total += 1

    def describe(self) -> Dict[str, Any]:
        """JSON-ready dataset identity (the ``POST /datasets`` reply)."""
        return {
            "name": self.name,
            "n": self.tps.n,
            "dim": self.tps.dim,
            "metric": self.tps.metric.name,
            "fingerprint": self.tps.fingerprint(),
        }

    def stats(self) -> Dict[str, Any]:
        """JSON-ready serving + cache statistics (the ``GET /stats`` shape)."""
        with self._lock:
            queries_total = self._queries_total
            errors_total = self._errors_total
        return {
            "dataset": self.describe(),
            "cache": self.cache.stats.snapshot().as_dict(),
            "resident_indexes": len(self.cache),
            "workers": self.workers,
            "queue_limit": self.admission.limit,
            "in_flight": self.admission.in_flight,
            "rejected": self.admission.rejected,
            "queries_total": queries_total,
            "errors_total": errors_total,
            "uptime_seconds": time.monotonic() - self.created_monotonic,
        }

    def close(self) -> None:
        """Shut the shard's executor down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.executor.shutdown(wait=True, cancel_futures=True)


class DatasetRegistry:
    """Thread-safe name → :class:`DatasetShard` mapping."""

    def __init__(
        self,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        if queue_limit < 1:
            raise ValidationError(f"queue_limit must be >= 1, got {queue_limit!r}")
        self.default_max_entries = max_entries
        self.default_max_workers = max_workers
        self.default_queue_limit = queue_limit
        self._lock = threading.Lock()
        self._shards: Dict[str, DatasetShard] = {}
        #: Names whose registration is materialising right now — reserved
        #: under the lock so a racing duplicate fails fast instead of
        #: wasting a full workload build.
        self._reserved: set = set()

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        dataset: Union[TemporalPointSet, Mapping[str, Any]],
        max_entries: Optional[int] = None,
        max_workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        replace: bool = False,
    ) -> DatasetShard:
        """Materialise (if needed) and register a dataset under ``name``.

        ``dataset`` is either a ready :class:`TemporalPointSet` or a
        declarative spec for :func:`~repro.datasets.workload_from_spec`
        (the wire format of ``POST /datasets``).  Registering an
        existing name raises :class:`DuplicateDatasetError` unless
        ``replace=True``, in which case the old shard is closed.  The
        name is reserved before the (possibly slow) workload build, so
        a duplicate — racing or not — is rejected before any work.
        """
        if not isinstance(name, str) or not name or "/" in name or name != name.strip():
            raise ValidationError(
                f"dataset name must be a non-empty string without '/', got {name!r}"
            )
        with self._lock:
            if (name in self._shards or name in self._reserved) and not replace:
                raise DuplicateDatasetError(
                    f"dataset {name!r} is already registered; pass replace to overwrite"
                )
            if name in self._reserved:
                # replace=True cannot race a concurrent registration of
                # the same name either: there is one slot to take over.
                raise DuplicateDatasetError(
                    f"dataset {name!r} is being registered by another request"
                )
            self._reserved.add(name)
        try:
            if isinstance(dataset, TemporalPointSet):
                tps, spec = dataset, None
            else:
                tps, spec = workload_from_spec(dataset), dataset
            shard = DatasetShard(
                name,
                tps,
                spec=spec,
                max_entries=max_entries if max_entries is not None else self.default_max_entries,
                max_workers=max_workers if max_workers is not None else self.default_max_workers,
                queue_limit=queue_limit if queue_limit is not None else self.default_queue_limit,
            )
            with self._lock:
                old = self._shards.get(name)
                self._shards[name] = shard
        finally:
            with self._lock:
                self._reserved.discard(name)
        if old is not None:
            old.close()
        return shard

    def get(self, name: str) -> DatasetShard:
        with self._lock:
            shard = self._shards.get(name)
        if shard is None:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; registered: {self.names() or '(none)'}"
            )
        return shard

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._shards

    def stats(self) -> Dict[str, Any]:
        """Per-shard statistics keyed by dataset name."""
        with self._lock:
            shards = list(self._shards.values())
        return {shard.name: shard.stats() for shard in shards}

    def close(self) -> None:
        """Close every shard (idempotent)."""
        with self._lock:
            shards = list(self._shards.values())
            self._shards.clear()
        for shard in shards:
            shard.close()
