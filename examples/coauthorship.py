#!/usr/bin/env python3
"""Example 1.2 — aggregate-durable co-author pairs.

Researchers live on a low-dimensional "topic manifold" embedded in a
higher-dimensional space; two researchers are potential collaborators
when within unit distance.  Each has an active-career interval.  We look
for pairs who, beyond working with each other, sustained collaborations
with *shared* third researchers:

* SUM durability — total collaborator-overlap time across all shared
  collaborators (rewards many simultaneous collaborators);
* UNION durability — the length of career covered by at least one
  shared collaborator, with a budget of κ witnesses (rewards sustained
  coverage).

Run:  python examples/coauthorship.py
"""

from __future__ import annotations

from repro import SumPairIndex, UnionPairIndex
from repro.datasets import coauthorship_workload
from repro.geometry import doubling_dimension_estimate


def main() -> None:
    tps = coauthorship_workload(n=350, intrinsic_dim=2, ambient_dim=6, seed=3)
    rho = doubling_dimension_estimate(tps.points, n_centers=16, seed=0)
    print(
        f"researchers: {tps.n}, ambient dim {tps.dim}, "
        f"estimated doubling dimension ≈ {rho:.1f}"
    )

    # --- SUM: total shared-collaborator time ---------------------------
    tau_sum = 40.0
    sum_index = SumPairIndex(tps, epsilon=0.5)
    sum_pairs = sum_index.query(tau_sum)
    print(f"\nSUM-durable pairs (τ = {tau_sum} collaborator-years): {len(sum_pairs)}")
    for rec in sorted(sum_pairs, key=lambda r: -r.score)[:5]:
        print(
            f"  ({rec.p:>3}, {rec.q:>3}): "
            f"{rec.score:6.1f} collaborator-years via shared co-authors"
        )

    # --- UNION: career coverage by ≤ κ shared collaborators ------------
    tau_union, kappa = 15.0, 3
    union_index = UnionPairIndex(tps, epsilon=0.5)
    union_pairs = union_index.query(tau_union, kappa)
    print(
        f"\nUNION-durable pairs (τ = {tau_union} years, κ = {kappa}): "
        f"{len(union_pairs)}"
    )
    for rec in sorted(union_pairs, key=lambda r: -r.score)[:5]:
        print(
            f"  ({rec.p:>3}, {rec.q:>3}): {rec.score:5.1f} years covered "
            f"by ≤ {kappa} shared co-authors"
        )

    # SUM and UNION rank pairs differently: SUM rewards bursts of many
    # simultaneous collaborators, UNION rewards temporal coverage.
    sum_keys = {r.key for r in sum_pairs}
    union_keys = {r.key for r in union_pairs}
    both = sum_keys & union_keys
    print(
        f"\noverlap: {len(both)} pairs are durable under both aggregates; "
        f"{len(sum_keys - union_keys)} only under SUM, "
        f"{len(union_keys - sum_keys)} only under UNION"
    )


if __name__ == "__main__":
    main()
