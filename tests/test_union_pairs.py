"""Tests for AggDurablePair-UNION (Section 5.2, Appendix E, Theorem 5.2)."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines.brute_pairs import brute_union_pairs, max_kappa_coverage
from repro.core.aggregate import UnionPairIndex

from conftest import random_tps

FACTOR = 1.0 - 1.0 / np.e


class TestMaxKappaCoverageDP:
    def test_single_interval(self):
        assert max_kappa_coverage([(0, 10)], (2, 6), 1) == 4.0

    def test_chooses_best_subset(self):
        ivs = [(0, 3), (2, 7), (6, 10)]
        assert max_kappa_coverage(ivs, (0, 10), 1) == 5.0
        assert max_kappa_coverage(ivs, (0, 10), 2) == 8.0
        assert max_kappa_coverage(ivs, (0, 10), 3) == 10.0

    def test_redundant_intervals(self):
        ivs = [(0, 1), (4, 5), (0, 10)]
        assert max_kappa_coverage(ivs, (0, 10), 1) == 10.0

    def test_gap_filling(self):
        ivs = [(0, 2), (5, 8), (1, 6)]
        assert max_kappa_coverage(ivs, (0, 8), 2) == 7.0
        assert max_kappa_coverage(ivs, (0, 8), 3) == 8.0

    def test_empty(self):
        assert max_kappa_coverage([], (0, 10), 2) == 0.0
        assert max_kappa_coverage([(20, 30)], (0, 10), 2) == 0.0

    def test_invalid_kappa(self):
        with pytest.raises(ValidationError):
            max_kappa_coverage([(0, 1)], (0, 10), 0)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exhaustive(self, seed):
        from itertools import combinations

        from repro import Interval, union_length

        rng = np.random.default_rng(seed)
        ivs = [
            (float(a), float(a + l))
            for a, l in zip(rng.integers(0, 20, 8), rng.integers(1, 8, 8))
        ]
        window = (3.0, 18.0)
        for kappa in (1, 2, 3):
            want = 0.0
            for r in range(1, kappa + 1):
                for combo in combinations(ivs, r):
                    clipped = [
                        Interval(max(lo, window[0]), min(hi, window[1]))
                        for lo, hi in combo
                        if min(hi, window[1]) > max(lo, window[0])
                    ]
                    want = max(want, union_length(clipped))
            got = max_kappa_coverage(ivs, window, kappa)
            assert abs(got - want) < 1e-9


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("kappa", [1, 2, 4])
    def test_sandwich(self, seed, kappa):
        eps = 0.5
        tau = 4.0
        tps = random_tps(n=50, seed=seed)
        idx = UnionPairIndex(tps, epsilon=eps)
        got = {r.key for r in idx.query(tau, kappa)}
        must = brute_union_pairs(tps, tau, kappa, threshold=1.0)
        may = brute_union_pairs(
            tps, FACTOR * tau - 1e-6, kappa, threshold=1.0 + eps + 1e-6
        )
        assert must <= got, f"missed exact UNION pairs: {sorted(must - got)[:5]}"
        assert got <= may, f"over-reported: {sorted(got - may)[:5]}"

    def test_kappa_monotone(self):
        tps = random_tps(n=50, seed=3)
        idx = UnionPairIndex(tps, epsilon=0.5)
        prev = set()
        for kappa in (1, 2, 4, 8):
            cur = {r.key for r in idx.query(4.0, kappa)}
            assert prev <= cur  # more witnesses can only help
            prev = cur

    def test_scores_reach_target(self):
        tps = random_tps(n=50, seed=5)
        idx = UnionPairIndex(tps, epsilon=0.5)
        tau = 3.0
        for r in idx.query(tau, 3):
            assert r.score >= FACTOR * tau - 1e-9

    def test_greedy_vs_exact_factor(self):
        """Greedy coverage is within (1-1/e) of the DP optimum."""
        tps = random_tps(n=40, seed=11)
        idx = UnionPairIndex(tps, epsilon=0.5)
        rng = np.random.default_rng(0)
        for _ in range(25):
            p, q = rng.integers(0, tps.n, size=2)
            if p == q:
                continue
            p, q = int(p), int(q)
            greedy = idx.union_score(p, q, 3)
            lo = max(tps.starts[p], tps.starts[q])
            hi = min(tps.ends[p], tps.ends[q])
            if hi <= lo:
                continue
            dp_relaxed = max_kappa_coverage(
                [
                    (float(tps.starts[u]), float(tps.ends[u]))
                    for u in range(tps.n)
                    if u not in (p, q)
                    and tps.dist(u, p) <= 1.5 + 1e-6
                    and tps.dist(u, q) <= 1.5 + 1e-6
                ],
                (float(lo), float(hi)),
                3,
            )
            assert greedy <= dp_relaxed + 1e-9
            exact_opt = max_kappa_coverage(
                [
                    (float(tps.starts[u]), float(tps.ends[u]))
                    for u in range(tps.n)
                    if u not in (p, q)
                    and tps.dist(u, p) <= 1.0
                    and tps.dist(u, q) <= 1.0
                ],
                (float(lo), float(hi)),
                3,
            )
            assert greedy >= FACTOR * exact_opt - 1e-9


class TestEdgeCases:
    def test_invalid_kappa(self):
        tps = random_tps(n=20, seed=1)
        idx = UnionPairIndex(tps, epsilon=0.5)
        with pytest.raises(ValidationError):
            idx.query(1.0, 0)

    def test_single_covering_witness(self):
        pts = np.array([[0.0, 0.0], [0.8, 0.0], [0.4, 0.3]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 10])
        got = {r.key for r in UnionPairIndex(tps, epsilon=0.25).query(6.0, 1)}
        assert got == {(0, 1), (0, 2), (1, 2)}

    def test_needs_two_witnesses(self):
        # Window [0,10]; witnesses cover [0,5] and [5,10] respectively.
        pts = np.array([[0.0, 0.0], [0.6, 0.0], [0.3, 0.2], [0.3, -0.2]])
        tps = TemporalPointSet(pts, [0, 0, 0, 5], [10, 10, 5, 10])
        idx = UnionPairIndex(tps, epsilon=0.25)
        pair_01 = {r.key for r in idx.query(9.0, 2)}
        assert (0, 1) in pair_01
        # With kappa=1 the best single witness covers only 5 < (1-1/e)*9.
        pair_01_k1 = {r.key for r in idx.query(9.0, 1)}
        assert (0, 1) not in pair_01_k1
