"""Concurrent plan execution with per-query timing and fault isolation.

Plans run on a :class:`~concurrent.futures.ThreadPoolExecutor`; index
builds are de-duplicated by the cache's single-flight discipline, so a
batch whose queries share one index performs one build no matter how
many workers race for it.  Query paths in this library are read-only
(the indexes memoise nothing after construction), so concurrent queries
against one shared index are safe and the result of a batch is
deterministic: results come back in submission order, and each query's
records are exactly what a sequential run would produce.

A query whose builder or runner raises does not destroy the rest of the
batch: with ``raise_on_error=False`` the failure is captured into its
own :class:`~repro.engine.results.QueryResult` (``ok=False``, ``error``
set) and every other plan's result is returned intact.  The default
``raise_on_error=True`` preserves the historical contract — the first
failing plan's exception propagates — which is what the one-call
``repro.api`` helpers rely on.

Threads — not processes — are the right pool here: a process pool would
have to pickle a full index per worker, forfeiting the shared build
that is the engine's whole point.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple

from ..obs.trace import ExecTrace
from .cache import IndexCache
from .planner import QueryPlan
from .results import QueryResult

__all__ = ["execute_plan", "execute_plans", "default_worker_count"]


def default_worker_count(n_plans: int) -> int:
    """Pool size: enough to cover the batch, bounded by the host CPUs."""
    cpus = os.cpu_count() or 1
    return max(1, min(n_plans, cpus))


def _traced_get(cache: IndexCache, key, builder, trace, parent_id, stage=None):
    """``get_or_build`` wrapped in a ``cache.get`` span when tracing.

    The span's ``outcome`` attribute distinguishes a ready hit, the
    single-flight build this request owned, and a wait on someone
    else's in-flight build — the three latencies an operator needs to
    tell apart when a cold index shows up in a waterfall.
    """
    if trace is None:
        return cache.get_or_build(key, builder)
    handle = trace.recorder.start_span(
        "cache.get",
        parent_id=parent_id,
        attrs={"family": key.family, "backend": key.backend,
               **({"stage": stage} if stage is not None else {})},
    )
    with handle:
        outcome = cache.get_or_build(key, builder)
        handle.set_attr("outcome", outcome.source)
        if not outcome.hit:
            handle.set_attr("build_seconds", round(outcome.build_seconds, 6))
    return outcome


def _execute_one(
    plan: QueryPlan, cache: IndexCache, trace: Optional[ExecTrace] = None
) -> Tuple[QueryResult, Optional[BaseException]]:
    """Run one plan, capturing any failure into the result envelope.

    Returns ``(result, exception)`` — the exception object is kept
    alongside the error result so ``raise_on_error=True`` callers can
    re-raise the original, not a stringified stand-in.

    Stage-less plans (the legacy kinds) fetch/build ``plan.key`` and
    call ``runner(index, tau)``.  Staged plans (``pattern-dsl``)
    acquire every :class:`~repro.engine.planner.PlanStage` through the
    same single-flight cache — per-stage build timing lands on the
    result's ``stages`` — and call ``runner({name: index}, tau)``.

    ``trace`` (an :class:`~repro.obs.trace.ExecTrace`) is passed
    explicitly because this runs on a thread pool where ambient
    contextvars do not follow; when present, the plan's queue wait,
    each cache acquisition and the runner sweep each land as spans.
    """
    t0 = time.perf_counter()
    query_span = None
    if trace is not None:
        # Time spent between executor submission and this thread picking
        # the plan up — thread-pool/admission backlog made visible.
        trace.recorder.add_timed(
            "queue.wait",
            parent_id=trace.parent_id,
            start=trace.submitted_wall,
            duration=time.perf_counter() - trace.submitted_perf,
            attrs={"query": trace.index},
        )
        query_span = trace.recorder.start_span(
            "engine.query",
            parent_id=trace.parent_id,
            attrs={
                "query": trace.index,
                "kind": plan.spec.kind,
                "backend": plan.key.backend,
                **({"template": plan.template} if plan.template else {}),
            },
        )
    parent_id = query_span.span_id if query_span is not None else None
    try:
        stage_timings: Tuple[Any, ...] = ()
        if plan.stages:
            indexes = {}
            cache_hit = True
            build_seconds = 0.0
            timings = []
            for stage in plan.stages:
                outcome = _traced_get(
                    cache, stage.key, stage.builder, trace, parent_id,
                    stage=stage.name,
                )
                indexes[stage.name] = outcome.index
                stage_build = 0.0 if outcome.hit else outcome.build_seconds
                build_seconds += stage_build
                cache_hit = cache_hit and outcome.hit
                timings.append(
                    {
                        "stage": stage.name,
                        "family": stage.key.family,
                        "backend": stage.key.backend,
                        "cache_hit": outcome.hit,
                        "build_seconds": stage_build,
                    }
                )
            stage_timings = tuple(timings)
            target: Any = indexes
        else:
            outcome = _traced_get(cache, plan.key, plan.builder, trace, parent_id)
            cache_hit = outcome.hit
            # The outcome carries its flight's own build time, so this
            # stays correct even if the entry was LRU-evicted by a later
            # build before we got here.
            build_seconds = 0.0 if outcome.hit else outcome.build_seconds
            target = outcome.index
        records_by_tau: "OrderedDict[float, List[Any]]" = OrderedDict()
        if trace is not None:
            # Staged plans evaluate the composed DSL combinator tree over
            # the stage indexes; legacy plans sweep one backend index.
            sweep_name = "dsl.eval" if plan.stages else "backend.query"
            sweep_span = trace.recorder.start_span(
                sweep_name, parent_id=parent_id,
                attrs={"taus": len(plan.spec.taus)},
            )
        else:
            sweep_span = None
        t_query = time.perf_counter()
        try:
            for tau in plan.spec.taus:
                records_by_tau[tau] = plan.runner(target, tau)
        except Exception as exc:
            if sweep_span is not None:
                sweep_span.set_error(f"{type(exc).__name__}: {exc}")
                sweep_span.finish()
            raise
        query_seconds = time.perf_counter() - t_query
        if sweep_span is not None:
            sweep_span.finish()
    except Exception as exc:
        if query_span is not None:
            query_span.set_error(f"{type(exc).__name__}: {exc}")
            query_span.finish()
        return (
            QueryResult(
                spec=plan.spec,
                key=plan.key,
                records_by_tau=OrderedDict(),
                cache_hit=False,
                build_seconds=0.0,
                query_seconds=time.perf_counter() - t0,
                error=f"{type(exc).__name__}: {exc}",
            ),
            exc,
        )
    if query_span is not None:
        query_span.finish()
    return (
        QueryResult(
            spec=plan.spec,
            key=plan.key,
            records_by_tau=records_by_tau,
            cache_hit=cache_hit,
            build_seconds=build_seconds,
            query_seconds=query_seconds,
            stages=stage_timings,
        ),
        None,
    )


def execute_plan(
    plan: QueryPlan, cache: IndexCache, raise_on_error: bool = True,
    trace: Optional[ExecTrace] = None,
) -> QueryResult:
    """Run a single plan; capture failures when ``raise_on_error`` is off."""
    result, exc = _execute_one(plan, cache, trace)
    if exc is not None and raise_on_error:
        raise exc
    return result


def execute_plans(
    plans: Sequence[QueryPlan],
    cache: IndexCache,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    raise_on_error: bool = True,
) -> List[QueryResult]:
    """Run every plan; results are returned in submission order.

    With ``raise_on_error=False`` a failing plan yields an error-carrying
    :class:`QueryResult` (``ok=False``) and never disturbs its
    neighbours.  With the default ``True``, every plan still runs to
    completion (the pool is drained) but the first failure — in
    submission order — is re-raised afterwards.
    """
    if not plans:
        return []
    workers = max_workers if max_workers is not None else default_worker_count(len(plans))
    if not parallel or workers <= 1 or len(plans) == 1:
        pairs = [_execute_one(p, cache) for p in plans]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_one, p, cache) for p in plans]
            pairs = [f.result() for f in futures]
    if raise_on_error:
        for _, exc in pairs:
            if exc is not None:
                raise exc
    return [result for result, _ in pairs]
