"""Lifespan generators.

Each returns ``(starts, ends)`` arrays for ``n`` points.  The shapes
mirror the paper's motivating applications: forum sessions are short and
bursty (Example 1.1), research careers are long with staggered entries
(Example 1.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = [
    "uniform_lifespans",
    "session_lifespans",
    "career_lifespans",
    "heavy_tail_lifespans",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_lifespans(
    n: int,
    horizon: float = 100.0,
    min_len: float = 1.0,
    max_len: float = 30.0,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Starts uniform in the horizon, lengths uniform in ``[min, max]``."""
    if not 0 <= min_len <= max_len:
        raise ValidationError("need 0 <= min_len <= max_len")
    rng = _rng(seed)
    starts = rng.uniform(0.0, horizon, size=n)
    lengths = rng.uniform(min_len, max_len, size=n)
    return starts, starts + lengths


def session_lifespans(
    n: int,
    day_length: float = 24.0,
    peak: float = 20.0,
    peak_width: float = 3.0,
    mean_len: float = 2.0,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Forum-style sessions: starts clustered around an evening peak,
    exponential session lengths (Example 1.1)."""
    rng = _rng(seed)
    starts = np.mod(rng.normal(loc=peak, scale=peak_width, size=n), day_length)
    lengths = rng.exponential(scale=mean_len, size=n)
    return starts, starts + lengths


def career_lifespans(
    n: int,
    horizon: float = 50.0,
    mean_len: float = 25.0,
    std_len: float = 8.0,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Co-authorship-style careers: long Gaussian-length activity spans
    with staggered entries (Example 1.2)."""
    rng = _rng(seed)
    starts = rng.uniform(0.0, horizon, size=n)
    lengths = np.clip(rng.normal(loc=mean_len, scale=std_len, size=n), 0.5, None)
    return starts, starts + lengths


def heavy_tail_lifespans(
    n: int,
    horizon: float = 100.0,
    pareto_shape: float = 1.5,
    scale: float = 2.0,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pareto-length lifespans: a few very durable nodes dominate, which
    stresses the output-sensitivity of the reporting algorithms."""
    if pareto_shape <= 0:
        raise ValidationError("pareto_shape must be positive")
    rng = _rng(seed)
    starts = rng.uniform(0.0, horizon, size=n)
    lengths = scale * (1.0 + rng.pareto(pareto_shape, size=n))
    return starts, starts + lengths
