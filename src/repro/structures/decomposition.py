"""Canonical-ball spatial decompositions (the geometry layer of ``D``).

Appendix A's modified cover tree answers ball-reporting queries with a
small family of *canonical balls*: disjoint groups of points, each inside
a metric ball of radius at most the decomposition *resolution*, such
that every point of ``B(q, R)`` lands in exactly one returned group and
every returned group lies within ``B(q, R + 2·resolution)``.

Two interchangeable implementations exist:

* :class:`~repro.covertree.CoverTreeDecomposition` — net hierarchy for
  arbitrary bounded-doubling metrics (Appendix A);
* :class:`~repro.quadtree.GridDecomposition` — one-level quadtree/grid
  for ``ℓ_α`` norms (Section 3 Remark 1, Appendix D.1).

The algorithms of Sections 3–5 only use this interface, so backends are
swappable (experiment E9 exploits that).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..geometry.metrics import Metric

__all__ = ["CanonicalGroup", "SpatialDecomposition", "GEOMETRY_SLACK"]

#: Additive slack applied to every geometric pruning test so floating
#: point rounding can only add candidates, never drop a must-report
#: result (DESIGN.md note 5).
GEOMETRY_SLACK = 1e-9


@dataclass(slots=True)
class CanonicalGroup:
    """One canonical ball: a group of points inside ``B(rep, radius_bound)``."""

    index: int
    rep: np.ndarray
    radius_bound: float
    member_ids: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.member_ids)


class SpatialDecomposition(ABC):
    """Partition of a point set into canonical balls of bounded radius.

    Attributes
    ----------
    groups:
        The canonical groups; together they partition the point ids.
    group_of:
        Array mapping each point id to its group index.
    resolution:
        Upper bound on every group's ``radius_bound``.
    """

    groups: List[CanonicalGroup]
    group_of: np.ndarray
    resolution: float
    metric: Metric

    @abstractmethod
    def candidate_groups(self, point: np.ndarray, radius: float) -> List[int]:
        """Indices of groups that may contain points of ``B(point, radius)``.

        Guarantees: every group holding a point within ``radius`` of
        ``point`` is returned, and every returned group's ball satisfies
        ``φ(point, rep) ≤ radius + radius_bound + slack`` — hence all its
        members are within ``radius + 2·resolution`` of ``point``.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def rep_matrix(self) -> np.ndarray:
        """``(g, d)`` array of group representatives (cached by callers)."""
        return np.vstack([g.rep for g in self.groups])

    def linked_groups(
        self, group_index: int, candidate_indices: Sequence[int], threshold: float = 1.0
    ) -> List[int]:
        """Candidate groups whose ball can contain a point within
        ``threshold`` of some point of ``groups[group_index]``.

        This is the Algorithm 1 pairing test
        ``φ(Rep_i, Rep_j) ≤ threshold + r_i + r_j`` generalised to
        per-group radius bounds.
        """
        g = self.groups[group_index]
        out: List[int] = []
        reps = np.vstack([self.groups[i].rep for i in candidate_indices])
        d = self.metric.dists(reps, g.rep)
        for pos, idx in enumerate(candidate_indices):
            other = self.groups[idx]
            if d[pos] <= threshold + g.radius_bound + other.radius_bound + GEOMETRY_SLACK:
                out.append(idx)
        return out
