"""repro — durable patterns in temporal proximity graphs (PODS 2024).

A from-scratch reproduction of Agarwal, Hu, Sintos & Yang,
"On Reporting Durable Patterns in Temporal Proximity Graphs" (PODS 2024,
Proc. ACM Manag. Data 2(2) Art. 81): near-linear reporting of durable
triangles, cliques, paths and stars in implicitly-represented proximity
graphs, incremental reporting across durability thresholds, and
aggregate-durable pair reporting (SUM / UNION).

Quick start::

    import numpy as np
    from repro import TemporalPointSet, find_durable_triangles

    pts = np.random.default_rng(0).uniform(0, 4, size=(200, 2))
    starts = np.random.default_rng(1).uniform(0, 50, size=200)
    tps = TemporalPointSet(pts, starts, starts + 10, metric="l2")
    triangles = find_durable_triangles(tps, tau=5.0, epsilon=0.5)

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced claims.
"""

from .errors import (
    BackendError,
    MetricError,
    ReproError,
    StructureError,
    ValidationError,
)
from .backends import (
    BackendDescriptor,
    BackendRegistry,
    CostModel,
    default_registry,
)
from .temporal.interval import EMPTY_INTERVAL, Interval, intersect_many, union_length
from .temporal.interval_set import IntervalSet
from .types import PairRecord, PatternRecord, TemporalPointSet, TriangleRecord
from .core.triangles import DurableTriangleIndex
from .core.incremental import IncrementalTriangleSession
from .core.aggregate import SumPairIndex, UnionPairIndex
from .core.linf import LinfTriangleIndex
from .core.dynamic import DynamicTriangleStream
from .core.patterns import (
    PatternIndex,
    find_durable_cliques,
    find_durable_paths,
    find_durable_stars,
)
from .engine import (
    BatchResult,
    IndexCache,
    QueryEngine,
    QueryResult,
    QuerySpec,
)
from .api import (
    default_engine,
    find_durable_triangles,
    find_sum_durable_pairs,
    find_union_durable_pairs,
)
from .core.counting import count_durable_triangles
from .core.multi import MultiIntervalTriangleFinder

__version__ = "1.0.0"

__all__ = [
    # errors
    "BackendError",
    "MetricError",
    "ReproError",
    "StructureError",
    "ValidationError",
    # backend registry
    "BackendDescriptor",
    "BackendRegistry",
    "CostModel",
    "default_registry",
    # temporal primitives
    "EMPTY_INTERVAL",
    "Interval",
    "intersect_many",
    "union_length",
    "IntervalSet",
    # value types
    "PairRecord",
    "PatternRecord",
    "TemporalPointSet",
    "TriangleRecord",
    # indexes / sessions
    "DurableTriangleIndex",
    "IncrementalTriangleSession",
    "SumPairIndex",
    "UnionPairIndex",
    "LinfTriangleIndex",
    "DynamicTriangleStream",
    "PatternIndex",
    # batched engine
    "QueryEngine",
    "QuerySpec",
    "QueryResult",
    "BatchResult",
    "IndexCache",
    "default_engine",
    # one-call API
    "find_durable_triangles",
    "find_sum_durable_pairs",
    "find_union_durable_pairs",
    "find_durable_cliques",
    "find_durable_paths",
    "find_durable_stars",
    "count_durable_triangles",
    "MultiIntervalTriangleFinder",
    "__version__",
]
