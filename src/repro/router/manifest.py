"""The placement manifest: which worker owns which dataset.

The manifest is the router's single source of truth for ownership.  It
records, per dataset, the owning worker slot, the original
registration payload (the ``POST /datasets`` body) and the ordered log
of event batches appended since, which is exactly what
restart-with-replay needs: when a worker dies, the supervisor replays
every payload the manifest says the dead worker owned onto its
replacement (with ``replace=True``, so replay is idempotent against
half-restored state), then re-appends each recorded event batch in
order — the replacement converges on the served state, not just the
seed.

With a ``path`` the manifest also persists itself — one atomic JSON
write per mutation — so a *router* restart can rebuild the whole fleet
layout: at boot every persisted entry is re-placed (deterministic HRW
⇒ same worker for an unchanged fleet) and re-registered.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ValidationError

__all__ = ["ManifestEntry", "PlacementManifest"]


@dataclass(frozen=True)
class ManifestEntry:
    """One placement record: dataset name, owner slot, replayable payload.

    ``events`` is the ordered log of NDJSON event batches appended to
    the dataset *after* its registration (``POST /datasets/<name>/events``
    bodies, verbatim).  Replay re-registers the seed payload and then
    re-appends every batch in order, so a restarted worker converges on
    the same epoch and point set the fleet served before the crash —
    not just the seed.  A re-registration (``replace=True`` through the
    router) resets the log along with the epoch.
    """

    name: str
    worker: str
    payload: Dict[str, Any]
    events: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "worker": self.worker,
            "payload": self.payload,
        }
        if self.events:
            doc["events"] = list(self.events)
        return doc


class PlacementManifest:
    """Thread-safe name → :class:`ManifestEntry` map, optionally persisted.

    Mutations come from the router's event loop (register/delete) and
    reads from the supervisor thread (replay), hence the lock.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, ManifestEntry] = {}
        self.path = path
        if path is not None and os.path.exists(path):
            self._load(path)

    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        worker: str,
        payload: Mapping[str, Any],
        events: Tuple[str, ...] = (),
    ) -> Optional[ManifestEntry]:
        """Record (or move) a placement; returns the entry it displaced.

        ``payload`` is stored without its ``replace`` flag — replay
        always forces ``replace=True`` itself, and a stale ``replace``
        from the original request must not leak into later replays.

        A fresh registration resets the dataset to epoch 0, so the
        event log resets with it; callers that merely *move* an entry
        (bootstrap re-placement after a fleet change) pass the old
        entry's ``events`` through to keep the log.
        """
        clean = {k: v for k, v in dict(payload).items() if k != "replace"}
        entry = ManifestEntry(
            name=name, worker=worker, payload=clean, events=tuple(events)
        )
        with self._lock:
            old = self._entries.get(name)
            self._entries[name] = entry
            self._save_locked()
        return old

    def record_events(self, name: str, batch: str) -> Optional[ManifestEntry]:
        """Append one accepted event batch to a dataset's replay log.

        ``batch`` is the raw NDJSON body the owning worker just
        accepted, stored verbatim so replay POSTs the identical bytes.
        Returns the updated entry, or ``None`` for an unknown name (the
        dataset was deleted while the append was in flight — nothing to
        replay, so nothing is recorded).
        """
        with self._lock:
            old = self._entries.get(name)
            if old is None:
                return None
            entry = ManifestEntry(
                name=old.name,
                worker=old.worker,
                payload=old.payload,
                events=old.events + (batch,),
            )
            self._entries[name] = entry
            self._save_locked()
        return entry

    def remove(self, name: str) -> Optional[ManifestEntry]:
        with self._lock:
            old = self._entries.pop(name, None)
            if old is not None:
                self._save_locked()
        return old

    def get(self, name: str) -> Optional[ManifestEntry]:
        with self._lock:
            return self._entries.get(name)

    def owned_by(self, worker: str) -> List[ManifestEntry]:
        """Every entry the given worker slot owns (replay set)."""
        with self._lock:
            return [e for e in self._entries.values() if e.worker == worker]

    def entries(self) -> List[ManifestEntry]:
        with self._lock:
            return list(self._entries.values())

    def placements(self) -> Dict[str, str]:
        """``dataset name -> worker slot`` (the ``/stats`` view)."""
        with self._lock:
            return {name: e.worker for name, e in sorted(self._entries.items())}

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    # ------------------------------------------------------------------
    def _save_locked(self) -> None:
        if self.path is None:
            return
        doc = {"datasets": [e.as_dict() for e in self._entries.values()]}
        # Atomic replace: a crash mid-write must never leave a torn
        # manifest (the file is what a router restart trusts).
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2)
        os.replace(tmp, self.path)

    def _load(self, path: str) -> None:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"cannot load placement manifest {path!r}: {exc}"
            ) from exc
        entries = doc.get("datasets") if isinstance(doc, Mapping) else None
        if not isinstance(entries, list):
            raise ValidationError(
                f"placement manifest {path!r} must be "
                "{'datasets': [{'name', 'worker', 'payload'}, ...]}"
            )
        for raw in entries:
            events = raw.get("events", []) if isinstance(raw, Mapping) else None
            if (
                not isinstance(raw, Mapping)
                or not isinstance(raw.get("name"), str)
                or not isinstance(raw.get("worker"), str)
                or not isinstance(raw.get("payload"), Mapping)
                or not isinstance(events, list)
                or not all(isinstance(b, str) for b in events)
            ):
                raise ValidationError(
                    f"malformed placement manifest entry in {path!r}: {raw!r}"
                )
            self._entries[raw["name"]] = ManifestEntry(
                name=raw["name"],
                worker=raw["worker"],
                payload=dict(raw["payload"]),
                events=tuple(events),
            )
