"""Distance metrics over point sets in ``R^d``.

The paper's algorithms work for any metric with bounded doubling
dimension (Section 2.1) and specialise to ``ℓ_α`` norms (Appendix D.1)
and ``ℓ_∞`` (Appendix B).  This module provides:

* :class:`Metric` — the interface consumed by every spatial structure:
  single-pair distance plus a vectorised many-to-one kernel;
* :class:`LpMetric` / :class:`ChebyshevMetric` — numpy-vectorised norms;
* :class:`FunctionMetric` — wraps an arbitrary Python callable (the
  "general metric oracle" case);
* :func:`get_metric` — resolves user-facing metric specifications.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Union

import numpy as np

from ..errors import MetricError

__all__ = [
    "Metric",
    "LpMetric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "FunctionMetric",
    "get_metric",
    "MetricSpec",
]

MetricSpec = Union[str, tuple, "Metric", Callable[[np.ndarray, np.ndarray], float]]


class Metric(ABC):
    """Distance oracle used by every spatial structure in the library."""

    #: Short name used in reprs and backend selection.
    name: str = "metric"

    #: True for ``ℓ_p``-style norms where grid hashing accelerates net
    #: construction and quadtree decompositions apply.
    supports_grid: bool = False

    @abstractmethod
    def dist(self, x: np.ndarray, y: np.ndarray) -> float:
        """Distance between two points (1-d arrays)."""

    @abstractmethod
    def dists(self, pts: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised distances from each row of ``pts`` to ``y``."""

    def cell_side_for_diameter(self, diameter: float, dim: int) -> float:
        """Side of an axis-aligned cube whose metric diameter is ≤ ``diameter``.

        Only meaningful when :attr:`supports_grid` is true.
        """
        raise MetricError(f"metric {self.name!r} does not support grid decompositions")

    def cache_token(self) -> str:
        """Identity token folded into dataset fingerprints and cache keys.

        Two metrics with equal tokens must compute equal distances; named
        norms use their name, opaque callables must override to avoid
        false cache sharing.
        """
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class LpMetric(Metric):
    """The ``ℓ_α`` norm for ``1 ≤ α < ∞`` (footnote 2 of the paper)."""

    supports_grid = True

    def __init__(self, alpha: float) -> None:
        if not alpha >= 1:
            raise MetricError(f"lp metric requires alpha >= 1, got {alpha!r}")
        self.alpha = float(alpha)
        self.name = f"l{alpha:g}"

    def dist(self, x: np.ndarray, y: np.ndarray) -> float:
        diff = np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float))
        if self.alpha == 2.0:
            return float(np.sqrt(np.dot(diff, diff)))
        if self.alpha == 1.0:
            return float(diff.sum())
        return float((diff**self.alpha).sum() ** (1.0 / self.alpha))

    def dists(self, pts: np.ndarray, y: np.ndarray) -> np.ndarray:
        diff = np.abs(np.asarray(pts, dtype=float) - np.asarray(y, dtype=float))
        if diff.ndim == 1:
            diff = diff[None, :]
        if self.alpha == 2.0:
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if self.alpha == 1.0:
            return diff.sum(axis=1)
        return (diff**self.alpha).sum(axis=1) ** (1.0 / self.alpha)

    def cell_side_for_diameter(self, diameter: float, dim: int) -> float:
        # A cube of side s has ℓ_α diameter s * d^(1/α).
        return diameter / (dim ** (1.0 / self.alpha))


class EuclideanMetric(LpMetric):
    """``ℓ_2`` — the default metric."""

    def __init__(self) -> None:
        super().__init__(2.0)
        self.name = "l2"


class ManhattanMetric(LpMetric):
    """``ℓ_1``."""

    def __init__(self) -> None:
        super().__init__(1.0)
        self.name = "l1"


class ChebyshevMetric(Metric):
    """``ℓ_∞`` — the metric with exact algorithms (Appendix B)."""

    name = "linf"
    supports_grid = True

    def dist(self, x: np.ndarray, y: np.ndarray) -> float:
        diff = np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float))
        return float(diff.max()) if diff.size else 0.0

    def dists(self, pts: np.ndarray, y: np.ndarray) -> np.ndarray:
        diff = np.abs(np.asarray(pts, dtype=float) - np.asarray(y, dtype=float))
        if diff.ndim == 1:
            diff = diff[None, :]
        return diff.max(axis=1)

    def cell_side_for_diameter(self, diameter: float, dim: int) -> float:
        # A cube of side s has ℓ_∞ diameter exactly s.
        return diameter


class FunctionMetric(Metric):
    """Wrap an arbitrary distance callable (the general metric oracle).

    The callable must implement a metric (symmetry, triangle inequality);
    the library cannot verify this and the approximation guarantees of
    the paper require it.
    """

    supports_grid = False

    def __init__(self, fn: Callable[[np.ndarray, np.ndarray], float], name: str = "custom") -> None:
        self._fn = fn
        self.name = name

    def dist(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(self._fn(np.asarray(x, dtype=float), np.asarray(y, dtype=float)))

    def dists(self, pts: np.ndarray, y: np.ndarray) -> np.ndarray:
        pts = np.asarray(pts, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        y = np.asarray(y, dtype=float)
        return np.fromiter(
            (self._fn(row, y) for row in pts), dtype=float, count=len(pts)
        )

    def cache_token(self) -> str:
        # Distinct callables may share a name; key on the function
        # identity so an index is never reused across different oracles.
        return f"{self.name}@{id(self._fn):x}"


_NAMED = {
    "l1": ManhattanMetric,
    "manhattan": ManhattanMetric,
    "l2": EuclideanMetric,
    "euclidean": EuclideanMetric,
    "linf": ChebyshevMetric,
    "chebyshev": ChebyshevMetric,
}


def get_metric(spec: MetricSpec = "l2") -> Metric:
    """Resolve a metric specification.

    Accepts a :class:`Metric` instance, a name (``"l1"``, ``"l2"``,
    ``"linf"``), a ``("lp", alpha)`` tuple, or a distance callable.
    """
    if isinstance(spec, Metric):
        return spec
    if isinstance(spec, str):
        key = spec.lower()
        if key in _NAMED:
            return _NAMED[key]()
        if key.startswith("l"):
            try:
                return LpMetric(float(key[1:]))
            except (ValueError, MetricError):
                pass
        raise MetricError(f"unknown metric name {spec!r}")
    if isinstance(spec, tuple) and len(spec) == 2 and spec[0] == "lp":
        return LpMetric(float(spec[1]))
    if callable(spec):
        return FunctionMetric(spec)
    raise MetricError(f"cannot interpret metric specification {spec!r}")
