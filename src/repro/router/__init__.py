"""Multi-process routing tier over the serving front end (ISSUE 5).

The decomposition indexes the paper builds are expensive to construct
and cheap to query, which rewards keeping each dataset's index cache
hot on a dedicated process.  This package is that scaling seam: a
router process that owns **placement** and **supervision**, in front of
N ``repro serve`` worker processes that own the shards.

* :mod:`~repro.router.placement` — cost-weighted rendezvous hashing:
  deterministic, churn-stable, and biased toward workers whose
  advertised backends the PR-4 cost model prices cheap for the
  dataset's shape;
* :mod:`~repro.router.manifest` — the placement manifest (dataset →
  worker + replayable registration payload), optionally persisted for
  router restarts;
* :mod:`~repro.router.supervisor` — the worker pool: spawn on loopback
  ports, probe liveness, restart-with-replay on death, graceful
  fan-out drain;
* :mod:`~repro.router.proxy` — :class:`RouterApp`, the public front
  end: same NDJSON-over-HTTP protocol as ``repro serve``, queries
  proxied to the owning worker with streaming and fault isolation
  preserved end to end, ``503`` (never a hang) for queries racing a
  dead worker, aggregated ``/stats``.

Start one with ``python -m repro route --workers N`` or, in-process,
:func:`start_router_thread` (the tests' and bench driver's fixture).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..obs.tracestore import DEFAULT_SLOW_QUERY_MS, DEFAULT_TRACE_SAMPLE
from ..serve.server import ServerHandle, start_app_thread
from .manifest import ManifestEntry, PlacementManifest
from .placement import WorkerCandidate, choose_worker, features_from_spec
from .proxy import RouterApp
from .supervisor import (
    DEFAULT_BOOT_TIMEOUT,
    DEFAULT_PROBE_INTERVAL,
    WorkerPool,
    WorkerStatus,
)

__all__ = [
    "ManifestEntry",
    "PlacementManifest",
    "WorkerCandidate",
    "WorkerPool",
    "WorkerStatus",
    "RouterApp",
    "choose_worker",
    "features_from_spec",
    "run_router",
    "start_router_thread",
    "DEFAULT_PROBE_INTERVAL",
    "DEFAULT_BOOT_TIMEOUT",
]


def _build_router(
    workers: int,
    worker_backends: Optional[Sequence[Optional[Sequence[str]]]],
    manifest_path: Optional[str],
    probe_interval: float,
    serve_args: Sequence[str],
    datasets: Optional[Mapping[str, Any]],
    trace_sample: float = DEFAULT_TRACE_SAMPLE,
    slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
    tracing: bool = True,
) -> RouterApp:
    """Spawn the worker fleet and restore state; blocking."""
    manifest = PlacementManifest(manifest_path)
    pool = WorkerPool(
        workers=workers,
        worker_backends=worker_backends,
        serve_args=serve_args,
        manifest=manifest,
        probe_interval=probe_interval,
    )
    pool.start()
    try:
        app = RouterApp(
            pool,
            manifest=manifest,
            trace_sample=trace_sample,
            slow_query_ms=slow_query_ms,
            tracing=tracing,
        )
        # A persisted manifest restores the previous layout before the
        # router takes traffic; CLI --dataset entries register after,
        # so an explicit boot dataset wins over a stale manifest row.
        app.bootstrap()
        for name, spec in (datasets or {}).items():
            app.register_blocking(name, spec)
    except BaseException:
        pool.stop(graceful=False)
        raise
    return app


def run_router(
    host: str = "127.0.0.1",
    port: int = 8766,
    workers: int = 2,
    worker_backends: Optional[Sequence[Optional[Sequence[str]]]] = None,
    manifest_path: Optional[str] = None,
    probe_interval: float = DEFAULT_PROBE_INTERVAL,
    serve_args: Sequence[str] = (),
    datasets: Optional[Mapping[str, Any]] = None,
    announce=None,
    trace_sample: float = DEFAULT_TRACE_SAMPLE,
    slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
) -> None:
    """Blocking entry point for ``python -m repro route``."""
    import asyncio

    app = _build_router(
        workers, worker_backends, manifest_path, probe_interval,
        serve_args, datasets,
        trace_sample=trace_sample, slow_query_ms=slow_query_ms,
    )
    on_bound = None
    if announce is not None:
        on_bound = lambda h, p: announce(h, p, app)
    try:
        asyncio.run(app.run_until_shutdown(host, port, on_bound=on_bound))
    except KeyboardInterrupt:
        pass


def start_router_thread(
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    worker_backends: Optional[Sequence[Optional[Sequence[str]]]] = None,
    manifest_path: Optional[str] = None,
    probe_interval: float = DEFAULT_PROBE_INTERVAL,
    serve_args: Sequence[str] = (),
    datasets: Optional[Mapping[str, Any]] = None,
    boot_timeout: float = 30.0,
    trace_sample: float = DEFAULT_TRACE_SAMPLE,
    slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
    tracing: bool = True,
) -> ServerHandle:
    """Start a router (plus its worker fleet) on a daemon thread.

    Returns once the router is listening; ``handle.stop()`` drains the
    router and the whole fleet.  The worker processes are real
    subprocesses — this is the fixture the failover tests and the
    router bench drive.
    """
    app = _build_router(
        workers, worker_backends, manifest_path, probe_interval,
        serve_args, datasets,
        trace_sample=trace_sample, slow_query_ms=slow_query_ms,
        tracing=tracing,
    )
    try:
        return start_app_thread(
            app, host, port, boot_timeout=boot_timeout, thread_name="repro-route"
        )
    except BaseException:
        app.pool.stop(graceful=False)
        raise
