"""Tests for the public API surface and value types."""

import numpy as np
import pytest

import repro
from repro import (
    Interval,
    PairRecord,
    PatternRecord,
    TemporalPointSet,
    TriangleRecord,
    ValidationError,
    find_durable_triangles,
    find_sum_durable_pairs,
    find_union_durable_pairs,
)
from repro.baselines import brute_force_triangle_keys

from conftest import random_tps


class TestExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_public_items_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, str):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestTemporalPointSet:
    def test_validation_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            TemporalPointSet(np.zeros((3, 2)), [0, 0], [1, 1, 1])

    def test_validation_inverted_lifespan(self):
        with pytest.raises(ValidationError):
            TemporalPointSet(np.zeros((2, 2)), [0, 5], [1, 4])

    def test_validation_non_finite(self):
        with pytest.raises(ValidationError):
            TemporalPointSet(np.array([[np.nan, 0.0]]), [0], [1])

    def test_1d_points_promoted(self):
        tps = TemporalPointSet([1.0, 2.0, 3.0], [0, 0, 0], [1, 1, 1])
        assert tps.dim == 1 and tps.n == 3

    def test_lifespan_accessors(self):
        tps = random_tps(n=10, seed=0)
        assert tps.lifespan(3) == Interval(float(tps.starts[3]), float(tps.ends[3]))
        assert tps.duration(3) == tps.lifespan(3).length

    def test_anchor_key_orders_by_start_then_id(self):
        tps = TemporalPointSet(np.zeros((3, 1)), [5, 5, 4], [9, 9, 9])
        assert tps.anchor_key(1) > tps.anchor_key(0) > tps.anchor_key(2)

    def test_subset(self):
        tps = random_tps(n=20, seed=1)
        sub = tps.subset([3, 5, 7])
        assert sub.n == 3
        assert np.array_equal(sub.points[1], tps.points[5])

    def test_pattern_lifespan(self):
        tps = TemporalPointSet(np.zeros((3, 1)), [0, 2, 4], [10, 8, 6])
        assert tps.pattern_lifespan([0, 1, 2]) == Interval(4, 6)


class TestRecords:
    def test_triangle_key_sorted(self):
        r = TriangleRecord(anchor=5, q=1, s=3, lifespan=Interval(0, 2))
        assert r.key == (1, 3, 5)
        assert r.durability == 2.0
        assert r.ids == (5, 1, 3)

    def test_pair_key_sorted(self):
        assert PairRecord(p=7, q=2, score=1.0).key == (2, 7)

    def test_pattern_keys(self):
        clique = PatternRecord("clique", (3, 1, 2), Interval(0, 1))
        assert clique.key == (1, 2, 3)
        path = PatternRecord("path", (4, 2, 1), Interval(0, 1))
        assert path.key == (1, 2, 4)
        star = PatternRecord("star", (5, 4, 1), Interval(0, 1))
        assert star.key == (5, 1, 4)


class TestConvenienceFunctions:
    def test_find_triangles_default(self):
        tps = random_tps(n=50, seed=3)
        got = {r.key for r in find_durable_triangles(tps, 2.0, epsilon=0.5)}
        assert brute_force_triangle_keys(tps, 2.0) <= got

    def test_find_triangles_auto_linf_is_exact(self):
        tps = random_tps(n=50, seed=4, metric="linf")
        got = {r.key for r in find_durable_triangles(tps, 2.0)}
        assert got == brute_force_triangle_keys(tps, 2.0)

    def test_find_triangles_explicit_exact_backend(self):
        tps = random_tps(n=40, seed=5, metric="linf")
        got = {r.key for r in find_durable_triangles(tps, 2.0, backend="linf-exact")}
        assert got == brute_force_triangle_keys(tps, 2.0)

    def test_exact_backend_rejects_non_linf_metric(self):
        # Regression (ISSUE 1): requesting the exact ℓ∞ algorithm on a
        # non-ℓ∞ metric must fail validation, not run with ℓ∞ semantics.
        for metric in ("l2", "l1", ("lp", 3.0)):
            tps = random_tps(n=20, seed=8, metric=metric)
            with pytest.raises(ValidationError):
                find_durable_triangles(tps, 2.0, backend="linf-exact")

    def test_repeated_api_calls_share_one_index(self):
        engine = repro.default_engine()
        engine.reset()
        tps = random_tps(n=40, seed=9)
        first = find_durable_triangles(tps, 3.0)
        again = find_durable_triangles(tps, 4.0)
        assert engine.stats.builds == 1
        assert {r.key for r in again} <= {r.key for r in first}

    def test_find_sum_pairs_runs(self):
        tps = random_tps(n=40, seed=6)
        recs = find_sum_durable_pairs(tps, 3.0)
        assert all(isinstance(r, PairRecord) for r in recs)

    def test_find_union_pairs_runs(self):
        tps = random_tps(n=40, seed=7)
        recs = find_union_durable_pairs(tps, 3.0, kappa=2)
        assert all(isinstance(r, PairRecord) for r in recs)
