"""Compile pattern ASTs onto the planner's shared-index primitives.

A compiled pattern is an ordinary :class:`~repro.engine.planner.QueryPlan`
whose ``stages`` name every distinct index the pattern needs — one
:class:`~repro.engine.planner.PlanStage` per distinct
:class:`~repro.engine.cache.IndexKey`, minted by the *same* backend
descriptor hooks the legacy kinds use.  Two consequences fall out:

* stage keys are bit-identical to the keys the equivalent legacy query
  would emit, so DSL and legacy queries share indexes through the
  single-flight :class:`~repro.engine.cache.IndexCache`;
* a pattern with five pair sub-patterns over one dataset compiles to
  **one** pair-index stage — deduplication happens at key level, before
  anything is built.

The runner closed over the AST evaluates combinators bottom-up at query
time (so one compiled plan answers a τ-sweep) with the semantics
documented in ``docs/query_language.md``:

``seq``
    Component matches ordered by lifespan start
    (``start(c_{i+1}) >= start(c_i)``); ``gap=[lo, hi]`` bounds each
    consecutive start delta.  Composite lifespan = span hull.
``all``
    Joint lifespan intersection of all components must be at least the
    node's effective τ.  Composite lifespan = the intersection.

Components of one match are pairwise *distinct* (by canonical record
key), so ``seq(pairs, pairs)`` never degenerately matches a pair with
itself.  A primitive *root* returns the legacy records untouched —
the DSL spelling of a legacy kind is record-for-record identical to
the native kind (property-tested in ``tests/test_query_language.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ValidationError
from ..temporal.interval import Interval, intersect_many
from ..types import TemporalPointSet
from .ast import (
    AllNode,
    PairsNode,
    PatternNode,
    SeqNode,
    ShapeNode,
    TrianglesNode,
)
from .records import ComposedRecord

__all__ = ["compile_pattern", "MAX_COMBINATIONS"]

#: Hard bound on in-flight combinator combinations per evaluation —
#: a cross product past this point signals an unconstrained pattern,
#: not a workload the engine should grind through.
MAX_COMBINATIONS = 1_000_000

_SHAPE_ITERATORS = {
    "clique": "iter_cliques",
    "path": "iter_paths",
    "star": "iter_stars",
}


def _leaf_spec(node: PatternNode, spec: Any) -> Any:
    """The legacy :class:`QuerySpec` a primitive leaf lowers to.

    Only the index-identity-bearing fields matter here (kind, ε,
    backend, sum_backend, exact): τ is a query-time parameter for every
    family, so the leaf spec borrows the parent's taus verbatim.
    """
    from ..engine.spec import QuerySpec

    common = dict(taus=spec.taus, epsilon=spec.epsilon, backend=spec.backend)
    if isinstance(node, TrianglesNode):
        return QuerySpec(kind="triangles", exact=node.exact, **common)
    if isinstance(node, ShapeNode):
        kind = {"clique": "cliques", "path": "paths", "star": "stars"}[node.shape]
        return QuerySpec(kind=kind, m=node.m, **common)
    if isinstance(node, PairsNode):
        if node.agg == "sum":
            return QuerySpec(
                kind="pairs-sum", sum_backend=spec.sum_backend, **common
            )
        return QuerySpec(kind="pairs-union", kappa=node.kappa, **common)
    raise ValidationError(f"unexpected pattern node {type(node).__name__}")


class _Match:
    """One component match: the record plus its composite interval."""

    __slots__ = ("record", "interval")

    def __init__(self, record: Any, interval: Interval) -> None:
        self.record = record
        self.interval = interval

    @property
    def key(self) -> Any:
        return self.record.key


def _primitive_matches(
    node: PatternNode,
    index: Any,
    tau: float,
    tps: TemporalPointSet,
) -> List[_Match]:
    if isinstance(node, TrianglesNode):
        records = index.query(tau)
        return [_Match(r, r.lifespan) for r in records]
    if isinstance(node, ShapeNode):
        iterate = getattr(index, _SHAPE_ITERATORS[node.shape])
        return [_Match(r, r.lifespan) for r in iterate(node.m, tau)]
    # PairsNode: PairRecord carries no lifespan; derive it from the pair.
    if node.agg == "union":
        records = index.query(tau, node.kappa)
    else:
        records = index.query(tau)
    return [_Match(r, tps.pattern_lifespan((r.p, r.q))) for r in records]


def _dur_filter(matches: List[_Match], dur: Optional[Tuple[float, float]]) -> List[_Match]:
    if dur is None:
        return matches
    lo, hi = dur
    return [m for m in matches if lo <= m.interval.length <= hi]


def _combine_seq(
    parts: List[List[_Match]], gap: Optional[Tuple[float, float]]
) -> List[Tuple[_Match, ...]]:
    combos: List[Tuple[_Match, ...]] = [(m,) for m in parts[0]]
    for nxt in parts[1:]:
        by_start = sorted(nxt, key=lambda m: (m.interval.start, m.interval.end))
        grown: List[Tuple[_Match, ...]] = []
        for combo in combos:
            prev_start = combo[-1].interval.start
            for match in by_start:
                delta = match.interval.start - prev_start
                if delta < 0:
                    continue
                if gap is not None and delta < gap[0]:
                    continue
                if gap is not None and delta > gap[1]:
                    break  # sorted by start: every later delta is larger
                if any(match.key == c.key for c in combo):
                    continue
                grown.append(combo + (match,))
                if len(grown) > MAX_COMBINATIONS:
                    raise ValidationError(
                        "pattern produced more than "
                        f"{MAX_COMBINATIONS} seq combinations; "
                        "tighten gap/dur/tau constraints"
                    )
        combos = grown
        if not combos:
            break
    return combos


def _combine_all(parts: List[List[_Match]]) -> List[Tuple[_Match, ...]]:
    combos: List[Tuple[_Match, ...]] = [(m,) for m in parts[0]]
    for nxt in parts[1:]:
        grown: List[Tuple[_Match, ...]] = []
        for combo in combos:
            for match in nxt:
                if not combo[-1].interval.overlaps(match.interval):
                    # Necessary condition for a non-empty joint
                    # intersection — a cheap reject before the product
                    # grows (the final intersect_many stays the truth).
                    continue
                if any(match.key == c.key for c in combo):
                    continue
                grown.append(combo + (match,))
                if len(grown) > MAX_COMBINATIONS:
                    raise ValidationError(
                        "pattern produced more than "
                        f"{MAX_COMBINATIONS} all combinations; "
                        "tighten dur/tau constraints"
                    )
        combos = grown
        if not combos:
            break
    return combos


def _evaluate(
    node: PatternNode,
    stage_of: Dict[int, str],
    indexes: Mapping[str, Any],
    tau: float,
    tps: TemporalPointSet,
) -> List[_Match]:
    node_tau = node.tau if node.tau is not None else tau
    if isinstance(node, SeqNode):
        parts = [
            _evaluate(p, stage_of, indexes, node_tau, tps) for p in node.parts
        ]
        out: List[_Match] = []
        for combo in _combine_seq(parts, node.gap):
            hull = Interval(
                min(m.interval.start for m in combo),
                max(m.interval.end for m in combo),
            )
            out.append(
                _Match(
                    ComposedRecord(
                        "seq", tuple(m.record for m in combo), hull
                    ),
                    hull,
                )
            )
        return _dur_filter(out, node.dur)
    if isinstance(node, AllNode):
        parts = [
            _evaluate(p, stage_of, indexes, node_tau, tps) for p in node.parts
        ]
        out = []
        for combo in _combine_all(parts):
            joint = intersect_many(m.interval for m in combo)
            if joint.is_empty or joint.length < node_tau:
                continue
            out.append(
                _Match(
                    ComposedRecord(
                        "all", tuple(m.record for m in combo), joint
                    ),
                    joint,
                )
            )
        return _dur_filter(out, node.dur)
    index = indexes[stage_of[id(node)]]
    return _dur_filter(
        _primitive_matches(node, index, node_tau, tps), node.dur
    )


def compile_pattern(order: int, spec: Any, tps: TemporalPointSet, registry: Any = None):
    """Lower ``spec.pattern`` to a staged :class:`QueryPlan`.

    Every primitive leaf resolves through the backend registry exactly
    as its legacy kind would; distinct leaves that resolve to the same
    :class:`IndexKey` share one stage.  Validation failures (a leaf the
    registry rejects, e.g. ``exact=True`` off the ℓ∞ metric) surface as
    :class:`~repro.errors.ValidationError` at plan time.
    """
    from ..backends.registry import default_registry
    from ..engine.cache import IndexKey
    from ..engine.planner import PlanStage, QueryPlan

    root: PatternNode = spec.pattern
    if root is None:
        raise ValidationError("pattern-dsl queries require a pattern payload")
    reg = registry if registry is not None else default_registry()

    stages: List[PlanStage] = []
    stage_by_key: Dict[Any, str] = {}
    stage_of: Dict[int, str] = {}

    def lower(node: PatternNode) -> None:
        if isinstance(node, (SeqNode, AllNode)):
            for part in node.parts:
                lower(part)
            return
        leaf = _leaf_spec(node, spec)
        descriptor = reg.resolve(leaf, tps).descriptor
        key = descriptor.index_identity(leaf, tps.fingerprint())
        name = stage_by_key.get(key)
        if name is None:
            name = f"s{len(stages)}"
            stage_by_key[key] = name
            stages.append(
                PlanStage(
                    name=name, key=key, builder=descriptor.make_builder(leaf, tps)
                )
            )
        stage_of[id(node)] = name

    lower(root)

    def runner(indexes: Mapping[str, Any], tau: float) -> List[Any]:
        matches = _evaluate(root, stage_of, indexes, tau, tps)
        return [m.record for m in matches]

    def builder() -> Any:
        raise ValidationError(
            "pattern-dsl plans build per-stage indexes; "
            "use the plan's stages, not its composite key"
        )

    return QueryPlan(
        order=order,
        spec=spec,
        key=IndexKey("pattern-dsl", tps.fingerprint(), spec.epsilon, "dsl", ()),
        builder=builder,
        runner=runner,
        template="pattern-dsl",
        stages=tuple(stages),
    )
