"""Boundary-condition regression tests.

The paper's guarantees are stated with non-strict inequalities
(``φ ≤ 1``, ``|I| ≥ τ``); these tests pin the exact-boundary behaviour
and the GEOMETRY_SLACK policy (DESIGN.md note 5): rounding may only
*add* candidates, never drop an exact result.
"""

import numpy as np
import pytest

from repro import (
    DurableTriangleIndex,
    SumPairIndex,
    TemporalPointSet,
    UnionPairIndex,
    ValidationError,
)
from repro.structures.decomposition import GEOMETRY_SLACK


class TestDistanceBoundaries:
    def test_exactly_unit_distance_included(self):
        # Equilateral-ish triangle with two sides exactly 1.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 10])
        got = {r.key for r in DurableTriangleIndex(tps, epsilon=0.25).query(5.0)}
        assert (0, 1, 2) in got

    def test_slack_is_tiny(self):
        assert 0 < GEOMETRY_SLACK <= 1e-6

    def test_far_point_never_reported_as_exact(self):
        # Distances just above 1+ε must never appear.
        eps = 0.25
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.1], [2.3, 0.0]])
        tps = TemporalPointSet(pts, [0] * 4, [10] * 4)
        for r in DurableTriangleIndex(tps, epsilon=eps).query(5.0):
            assert 3 not in r.ids  # point 3 is > (1+eps) from everyone

    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    def test_unit_lattice_edges(self, metric):
        # Axis-aligned unit steps are exactly distance 1 in all three metrics.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        tps = TemporalPointSet(pts, [0, 0, 0], [9, 9, 9], metric=metric)
        recs = DurableTriangleIndex(tps, epsilon=0.5).query(4.0)
        keys = {r.key for r in recs}
        if metric == "linf":
            assert (0, 1, 2) in keys  # the diagonal is 1 under linf: triangle
        # Under l1/l2 the diagonal is 2 / sqrt(2): only an ε-extra at most.


class TestTemporalBoundaries:
    def test_durability_exactly_tau(self):
        tps = TemporalPointSet(np.zeros((3, 2)), [0, 0, 0], [5, 5, 5])
        assert len(DurableTriangleIndex(tps, epsilon=0.5).query(5.0)) == 1
        assert DurableTriangleIndex(tps, epsilon=0.5).query(5.0 + 1e-9) == []

    def test_partner_end_exactly_at_threshold(self):
        # q's end is exactly anchor_start + tau: inclusive.
        tps = TemporalPointSet(
            np.zeros((3, 2)), [2, 0, 0], [12, 7, 7]
        )  # window [2, 7] = 5
        recs = DurableTriangleIndex(tps, epsilon=0.5).query(5.0)
        assert len(recs) == 1 and recs[0].durability == 5.0

    def test_touching_lifespans_zero_durability(self):
        tps = TemporalPointSet(np.zeros((3, 2)), [0, 5, 5], [5, 9, 9])
        # intersection is the single instant t=5: never τ-durable (τ>0).
        assert DurableTriangleIndex(tps, epsilon=0.5).query(0.001) == []

    def test_empty_point_set_rejected(self):
        with pytest.raises(ValidationError):
            TemporalPointSet(np.zeros((0, 2)), [], [])

    def test_zero_dim_rejected(self):
        with pytest.raises(ValidationError):
            TemporalPointSet(np.zeros((3, 0)), [0, 0, 0], [1, 1, 1])


class TestAggregateBoundaries:
    def test_sum_exactly_tau(self):
        # One witness whose overlap is exactly tau.
        pts = np.array([[0.0, 0.0], [0.6, 0.0], [0.3, 0.2]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 4])
        got = {r.key for r in SumPairIndex(tps, epsilon=0.25).query(4.0)}
        assert (0, 1) in got
        got_above = {r.key for r in SumPairIndex(tps, epsilon=0.25).query(4.0 + 1e-9)}
        assert (0, 1) not in got_above

    def test_union_greedy_exact_cover(self):
        # Single witness covering the whole window: (1-1/e)τ reached when
        # window ≥ (1-1/e)τ, i.e. full-cover pairs always survive.
        pts = np.array([[0.0, 0.0], [0.6, 0.0], [0.3, 0.2]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 10])
        got = {r.key for r in UnionPairIndex(tps, epsilon=0.25).query(10.0, 1)}
        assert (0, 1) in got
