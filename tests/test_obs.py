"""Tests for the observability layer (ISSUE 6 tentpole).

Three layers of coverage:

* **format units** — the metric instruments and the text-exposition
  renderer against the Prometheus 0.0.4 rules (escaping, histogram
  cumulativity, stable family set), plus the strict parser rejecting
  malformed scrapes;
* **live serve scrape** — a real server over real sockets: every
  ``GET /metrics`` body must round-trip through the strict parser, and
  the counters must agree with the traffic the test just generated;
* **tenant QoS** — auth (401), per-minute quotas (429 +
  ``Retry-After``), and weighted fair admission: a saturating tenant is
  bounded to its share and cannot starve the other tenant's admission.

Router-tier scrape aggregation (worker re-labelling) lives in
``test_router.py`` next to the other subprocess-fleet tests.
"""

import json
import math

import pytest

from repro.obs import (
    CONTENT_TYPE,
    ExpositionError,
    MetricsRegistry,
    counter_value,
    histogram_snapshot,
    merge,
    parse_exposition,
    relabel,
    render_merged,
)
from repro.serve import AdmissionQueue, AuthError, TenantTable

from test_serve import SOCIAL_SPEC, request, request_json, request_ndjson


@pytest.fixture(scope="module")
def server():
    from repro.serve import start_server_thread

    handle = start_server_thread(queue_limit=8)
    status, doc = request_json(
        handle, "POST", "/datasets", {"name": "soc", "dataset": SOCIAL_SPEC}
    )
    assert status == 201, doc
    yield handle
    handle.stop()


# ----------------------------------------------------------------------
# Format units
# ----------------------------------------------------------------------
class TestExpositionFormat:
    def test_counter_render_and_parse_round_trip(self):
        m = MetricsRegistry()
        c = m.counter("requests_total", "Requests.", ("route",))
        c.labels(route="/query").inc(3)
        c.labels(route="/stats").inc()
        families = parse_exposition(m.render())
        assert families["requests_total"].type == "counter"
        assert counter_value(families, "requests_total") == 4.0
        assert counter_value(families, "requests_total", {"route": "/query"}) == 3.0

    def test_help_and_type_render_with_zero_samples(self):
        # The name set must be stable from boot: a family with no
        # children yet still announces itself (the docs-vs-exposition
        # CI check depends on this).
        m = MetricsRegistry()
        m.counter("never_incremented_total", "Nothing yet.", ("tenant",))
        text = m.render()
        assert "# HELP never_incremented_total Nothing yet." in text
        assert "# TYPE never_incremented_total counter" in text
        assert parse_exposition(text)["never_incremented_total"].samples == []

    def test_label_escaping_round_trips(self):
        m = MetricsRegistry()
        g = m.gauge("weird", "Label escaping.", ("name",))
        nasty = 'a"b\\c\nd'
        g.labels(name=nasty).set(1)
        families = parse_exposition(m.render())
        (sample,) = families["weird"].samples
        assert dict(sample.labels)["name"] == nasty

    def test_histogram_is_cumulative_with_inf_sum_count(self):
        m = MetricsRegistry()
        h = m.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = m.render()
        families = parse_exposition(text)  # strict: checks cumulativity
        snap = histogram_snapshot(families, "lat_seconds")
        assert snap.count == 3 and snap.sum == pytest.approx(5.55)
        assert snap.cumulative == (1.0, 2.0, 3.0)
        assert snap.bounds[-1] == math.inf
        assert "lat_seconds_bucket{le=\"+Inf\"} 3" in text

    def test_parser_rejects_malformed_scrapes(self):
        good = "# TYPE x counter\nx 1\n"
        bad = [
            "x 1\n",                                  # sample before TYPE
            "# TYPE x counter\nx one\n",              # non-numeric value
            "# TYPE x counter\nx{l=\"v} 1\n",         # unterminated label
            "# TYPE h histogram\nh_bucket{le=\"1\"} 2\n"
            "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",  # non-cumulative
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n"
            "h_sum 1\nh_count 1\n",                   # missing +Inf
        ]
        parse_exposition(good)
        for text in bad:
            with pytest.raises(ExpositionError):
                parse_exposition(text)

    def test_relabel_and_merge(self):
        m = MetricsRegistry()
        m.counter("hits_total", "Hits.").inc(2)
        worker = relabel(parse_exposition(m.render()), worker="w0")
        (sample,) = worker["hits_total"].samples
        assert dict(sample.labels) == {"worker": "w0"}
        merged = merge(worker, relabel(parse_exposition(m.render()), worker="w1"))
        (family,) = [f for f in merged if f.name == "hits_total"]
        assert len(family.samples) == 2
        # render_merged output is itself a valid exposition
        assert counter_value(
            parse_exposition(render_merged(worker)), "hits_total"
        ) == 2.0

    def test_histogram_snapshot_diff_quantiles(self):
        m = MetricsRegistry()
        h = m.histogram("s", "Diff.", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5)
        before = histogram_snapshot(parse_exposition(m.render()), "s")
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        after = histogram_snapshot(parse_exposition(m.render()), "s")
        delta = after - before
        assert delta.count == 4
        assert delta.mean == pytest.approx((0.5 + 1.5 + 3.0 + 3.5) / 4)
        assert 0.0 < delta.quantile(0.25) <= 1.0
        assert 2.0 < delta.quantile(0.9) <= 4.0


# ----------------------------------------------------------------------
# Live serve-tier scrape
# ----------------------------------------------------------------------
class TestServeScrape:
    def test_metrics_endpoint_is_strictly_parseable(self, server):
        status, headers, body = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        families = parse_exposition(body.decode())  # raises on any violation
        for name in (
            "http_requests_total",
            "http_request_seconds",
            "http_connections_opened_total",
            "serve_datasets",
            "serve_queries_total",
            "serve_cache_hits_total",
            "serve_queue_depth",
            "serve_tenant_queries_total",  # present even with no tenants
        ):
            assert name in families, name

    def test_counters_track_traffic(self, server):
        before = parse_exposition(request(server, "GET", "/metrics")[2].decode())
        status, lines = request_ndjson(
            server, "POST", "/query",
            {"dataset": "soc",
             "queries": [{"kind": "pairs-sum", "tau": 2.0}],
             "include_records": False},
        )
        assert status == 200 and lines[-1]["ok"]
        after = parse_exposition(request(server, "GET", "/metrics")[2].decode())
        assert counter_value(
            after, "serve_queries_total", {"dataset": "soc"}
        ) - counter_value(before, "serve_queries_total", {"dataset": "soc"}) == 1.0
        assert counter_value(
            after, "http_requests_total", {"route": "/query", "status": "200"}
        ) >= 1.0
        delta = histogram_snapshot(
            after, "serve_query_seconds", {"dataset": "soc"}
        ) - histogram_snapshot(before, "serve_query_seconds", {"dataset": "soc"})
        assert delta.count == 1 and delta.sum > 0.0

    def test_unknown_paths_do_not_mint_label_cardinality(self, server):
        request(server, "GET", "/totally/made/up")
        families = parse_exposition(request(server, "GET", "/metrics")[2].decode())
        routes = {
            dict(s.labels)["route"]
            for s in families["http_requests_total"].samples
        }
        assert "/totally/made/up" not in routes
        assert "other" in routes


# ----------------------------------------------------------------------
# Tenant QoS
# ----------------------------------------------------------------------
TENANTS = TenantTable.from_spec(
    {
        "tenants": [
            {"key": "k-big", "name": "big", "weight": 3.0},
            {"key": "k-small", "name": "small", "weight": 1.0},
        ]
    }
)

#: A separate table (and server) for the quota test: quota windows are
#: per-minute wall-clock state, so sharing a tenant with the fairness
#: test would couple the two through leftover budget.
METERED = TenantTable.from_spec(
    [{"key": "k-metered", "name": "metered", "quota_per_minute": 4}]
)


def _tenant_server(tenants):
    from repro.serve import start_server_thread

    handle = start_server_thread(queue_limit=8, tenants=tenants)
    status, doc = request_json(
        handle, "POST", "/datasets", {"name": "soc", "dataset": SOCIAL_SPEC}
    )
    assert status == 201, doc
    return handle


@pytest.fixture(scope="class")
def tenant_server():
    handle = _tenant_server(TENANTS)
    yield handle
    handle.stop()


@pytest.fixture(scope="class")
def quota_server():
    handle = _tenant_server(METERED)
    yield handle
    handle.stop()


def tenant_request(handle, key, queries=None):
    import http.client

    body = {
        "dataset": "soc",
        "queries": queries or [{"kind": "pairs-sum", "tau": 2.0}],
        "include_records": False,
    }
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
    headers = {"Content-Type": "application/json"}
    if key is not None:
        headers["X-API-Key"] = key
    try:
        conn.request("POST", "/query", body=json.dumps(body), headers=headers)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


class TestTenantQoS:
    def test_query_without_key_is_401(self, tenant_server):
        status, _headers, body = tenant_request(tenant_server, None)
        assert status == 401
        assert "X-API-Key" in json.loads(body)["error"]

    def test_query_with_unknown_key_is_401(self, tenant_server):
        status, _headers, _body = tenant_request(tenant_server, "nope")
        assert status == 401

    def test_health_stats_metrics_stay_open(self, tenant_server):
        for path in ("/health", "/stats", "/metrics"):
            status, _headers, _body = request(tenant_server, "GET", path)
            assert status == 200, path

    def test_quota_breach_is_429_with_retry_after(self, quota_server):
        # "metered" has quota_per_minute=4 and each batch carries one
        # plan; the breach must answer 429 + Retry-After *without*
        # consuming the remaining budget.
        import time

        # Quota windows are fixed 60s buckets of the process monotonic
        # clock (shared with the in-process server): if the current
        # window is about to roll over, wait out the boundary so all
        # six requests land in one window.
        into_window = time.monotonic() % 60.0
        if into_window > 55.0:
            time.sleep(60.5 - into_window)
        statuses = []
        retry_after = None
        for _ in range(6):
            status, headers, _body = tenant_request(quota_server, "k-metered")
            statuses.append(status)
            if status == 429:
                retry_after = headers.get("Retry-After")
        assert statuses.count(200) == 4
        assert statuses.count(429) == 2
        assert retry_after is not None and 0 < int(retry_after) <= 60

        families = parse_exposition(
            request(quota_server, "GET", "/metrics")[2].decode()
        )
        assert counter_value(
            families, "serve_tenant_queries_total", {"tenant": "metered"}
        ) == 4.0
        assert counter_value(
            families, "serve_tenant_rejections_total",
            {"tenant": "metered", "reason": "quota"},
        ) == 2.0
        assert counter_value(
            families, "serve_tenant_quota_remaining", {"tenant": "metered"}
        ) == 0.0

    def test_saturating_tenant_is_bounded_to_its_share(self, tenant_server):
        # Weighted fair admission is enforced at the AdmissionQueue:
        # weights 3:1 over limit 8 give big=6, small=2.  Saturate
        # "big" beyond its share and prove (a) it is cut off at 6 with
        # reason "share", and (b) "small" can still admit work — the
        # isolation the tier exists for.
        shard = tenant_server.app.registry.get("soc")
        q = shard.admission
        assert q.share("big") == 6 and q.share("small") == 2
        taken = 0
        for _ in range(8):
            if q.acquire_for("big", 1) is None:
                taken += 1
        assert taken == 6
        assert q.acquire_for("big", 1) == "share"
        try:
            # The other tenant's share is untouched by the saturation.
            assert q.acquire_for("small", 1) is None
            assert q.acquire_for("small", 1) is None
            # Global limit (8) trips before small's own share would:
            # the queue is full but only because every tenant is at
            # its bound — nobody overdrew.
            assert q.acquire_for("small", 1) == "queue"
            q.release(2, tenant="small")
        finally:
            q.release(taken, tenant="big")

        # And over HTTP: with "big" holding its whole share, a "big"
        # query 429s with reason=share while a "small" query succeeds.
        for _ in range(q.share("big")):
            assert q.acquire_for("big", 1) is None
        try:
            status, headers, _body = tenant_request(tenant_server, "k-big")
            assert status == 429 and "Retry-After" in headers
            status, _headers, body = tenant_request(
                tenant_server, "k-small",
                queries=[{"kind": "pairs-sum", "tau": 2.0}],
            )
            assert status == 200
        finally:
            q.release(q.share("big"), tenant="big")

        families = parse_exposition(
            request(tenant_server, "GET", "/metrics")[2].decode()
        )
        assert counter_value(
            families, "serve_tenant_rejections_total",
            {"tenant": "big", "reason": "share"},
        ) >= 1.0


class TestTenantTableUnits:
    def test_resolve_and_weights(self):
        assert TENANTS.resolve("k-big").name == "big"
        with pytest.raises(AuthError):
            TENANTS.resolve("missing")
        assert TENANTS.weights() == {"big": 3.0, "small": 1.0}

    def test_spec_validation(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            TenantTable.from_spec({"tenants": [{"name": "x"}]})  # no key
        with pytest.raises(ValidationError):
            TenantTable.from_spec(
                {"tenants": [
                    {"key": "a", "name": "x"},
                    {"key": "a", "name": "y"},  # duplicate key
                ]}
            )
        with pytest.raises(ValidationError):
            TenantTable.from_spec(
                {"tenants": [{"key": "a", "name": "x", "weight": -1}]}
            )

    def test_quota_window_resets(self):
        table = TenantTable.from_spec(
            [{"key": "k", "name": "t", "quota_per_minute": 2}]
        )
        assert table.check_and_consume("t", 2, now=0.0) is None
        retry = table.check_and_consume("t", 1, now=30.0)
        assert retry == 30
        # Breach did not consume: the next window has the full budget.
        assert table.check_and_consume("t", 2, now=60.0) is None

    def test_static_shares_cover_degenerate_weights(self):
        q = AdmissionQueue(limit=4)
        q.set_tenant_weights({"a": 1000.0, "b": 0.001})
        # Every tenant gets at least one slot regardless of weight.
        assert q.share("b") >= 1
        # Unknown tenants (no table entry for the shard) fall back to
        # the anonymous path: bounded by the global limit only.
        assert q.acquire_for(None, 4) is None
        assert q.acquire_for(None, 1) == "queue"
        q.release(4)
