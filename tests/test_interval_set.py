"""Tests for IntervalSet (multi-interval lifespans, footnote 1)."""

import pytest
from hypothesis import given, strategies as st

from repro import Interval, IntervalSet, ValidationError


def span_lists(max_size=6, horizon=100):
    span = st.tuples(
        st.integers(0, horizon), st.integers(0, horizon // 2)
    ).map(lambda t: (float(t[0]), float(t[0] + t[1])))
    return st.lists(span, max_size=max_size)


class TestNormalisation:
    def test_merges_overlapping(self):
        s = IntervalSet([(0, 2), (1, 3)])
        assert s.spans == ((0.0, 3.0),)

    def test_merges_touching(self):
        s = IntervalSet([(0, 1), (1, 2)])
        assert s.spans == ((0.0, 2.0),)

    def test_keeps_disjoint(self):
        s = IntervalSet([(3, 4), (0, 1)])
        assert s.spans == ((0.0, 1.0), (3.0, 4.0))

    def test_rejects_inverted(self):
        with pytest.raises(ValidationError):
            IntervalSet([(2, 1)])

    def test_from_intervals_drops_empty(self):
        from repro import EMPTY_INTERVAL

        s = IntervalSet.from_intervals([Interval(0, 1), EMPTY_INTERVAL])
        assert s.spans == ((0.0, 1.0),)

    @given(span_lists())
    def test_always_sorted_and_disjoint(self, spans):
        s = IntervalSet(spans)
        for (a1, b1), (a2, b2) in zip(s.spans, s.spans[1:]):
            assert b1 < a2


class TestMeasure:
    def test_measure_sums_components(self):
        assert IntervalSet([(0, 1), (3, 5)]).measure == 3.0

    def test_max_window(self):
        assert IntervalSet([(0, 1), (3, 7)]).max_window == 4.0

    def test_empty(self):
        assert IntervalSet.empty().measure == 0.0
        assert IntervalSet.empty().max_window == 0.0

    def test_contains_point(self):
        s = IntervalSet([(0, 1), (3, 5)])
        assert s.contains_point(0.5)
        assert s.contains_point(3.0)
        assert s.contains_point(5.0)
        assert not s.contains_point(2.0)


class TestAlgebra:
    def test_intersect_interval(self):
        s = IntervalSet([(0, 2), (4, 6)])
        assert s.intersect(Interval(1, 5)).spans == ((1.0, 2.0), (4.0, 5.0))

    def test_intersect_set(self):
        a = IntervalSet([(0, 3), (5, 9)])
        b = IntervalSet([(2, 6)])
        assert a.intersect(b).spans == ((2.0, 3.0), (5.0, 6.0))

    def test_union(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(1, 2), (5, 6)])
        assert a.union(b).spans == ((0.0, 2.0), (5.0, 6.0))

    def test_subtract_middle(self):
        s = IntervalSet([(0, 10)])
        got = s.subtract(Interval(3, 5))
        assert got.spans == ((0.0, 3.0), (5.0, 10.0))

    def test_subtract_everything(self):
        s = IntervalSet([(0, 10)])
        assert s.subtract(Interval(-1, 11)).is_empty

    def test_subtract_multiple_blockers(self):
        s = IntervalSet([(0, 10)])
        got = s.subtract(IntervalSet([(1, 2), (4, 5), (9, 12)]))
        assert got.spans == ((0.0, 1.0), (2.0, 4.0), (5.0, 9.0))

    @given(span_lists(), span_lists())
    def test_inclusion_exclusion(self, sa, sb):
        a, b = IntervalSet(sa), IntervalSet(sb)
        lhs = a.union(b).measure + a.intersect(b).measure
        rhs = a.measure + b.measure
        assert abs(lhs - rhs) < 1e-6

    @given(span_lists(), span_lists())
    def test_subtract_partitions(self, sa, sb):
        a, b = IntervalSet(sa), IntervalSet(sb)
        assert abs(
            a.subtract(b).measure + a.intersect(b).measure - a.measure
        ) < 1e-6

    @given(span_lists())
    def test_intersect_self_identity(self, spans):
        a = IntervalSet(spans)
        assert a.intersect(a) == a

    def test_equality_and_hash(self):
        assert IntervalSet([(0, 1), (1, 2)]) == IntervalSet([(0, 2)])
        assert hash(IntervalSet([(0, 2)])) == hash(IntervalSet([(0, 1), (1, 2)]))
