"""Shared workload builders for the benchmark harness.

Workloads are cached per parameter tuple so pytest-benchmark rounds
measure only the operation under test, never data generation.  Index
construction goes through the same :class:`repro.engine.QueryEngine`
cache as the production path (``repro.api`` / ``python -m repro
batch``), so the bench harness measures exactly the code a serving
workload runs — and ``ENGINE.stats`` exposes how often a round reused
a preprocessing pass.

Sizes are chosen for pure Python (see DESIGN.md: the ``repro = 3/5``
band rules out C extensions offline): large enough that the predicted
shapes — slopes, crossovers, output-sensitivity — are visible, small
enough that the whole suite finishes in minutes.
"""

from __future__ import annotations

from functools import lru_cache

from repro import IncrementalTriangleSession, TemporalPointSet
from repro.datasets import benchmark_workload, manifold_points, uniform_lifespans
from repro.engine import QueryEngine, QuerySpec

#: Default durability threshold: selective but non-trivial on the
#: benchmark workload (lifespans are 1..20 on a horizon of 60).
TAU = 8.0
EPSILON = 0.5

#: One engine for the whole bench session; every ``*_index`` helper
#: below resolves through its shared-index cache.
ENGINE = QueryEngine()


@lru_cache(maxsize=None)
def workload(n: int, metric: str = "l2", density: float = 10.0, seed: int = 0):
    return benchmark_workload(n, density=density, seed=seed, metric=metric)


def triangle_index(n: int, epsilon: float = EPSILON, backend: str = "auto",
                   metric: str = "l2"):
    # exact=False keeps this the approximate solver even on ℓ∞
    # workloads (E6 benchmarks it against the exact one).
    spec = QuerySpec(
        kind="triangles", taus=TAU, epsilon=epsilon, backend=backend, exact=False
    )
    return ENGINE.get_index(workload(n, metric), spec)


def linf_index(n: int):
    spec = QuerySpec(kind="triangles", taus=TAU, backend="linf-exact")
    return ENGINE.get_index(workload(n, "linf"), spec)


def sum_index(n: int, sum_backend: str = "profile"):
    spec = QuerySpec(
        kind="pairs-sum", taus=TAU, epsilon=EPSILON, sum_backend=sum_backend
    )
    return ENGINE.get_index(workload(n), spec)


def union_index(n: int):
    # κ is a query-time parameter; any valid value yields the same index.
    spec = QuerySpec(kind="pairs-union", taus=TAU, kappa=1, epsilon=EPSILON)
    return ENGINE.get_index(workload(n), spec)


@lru_cache(maxsize=None)
def manifold_workload(n: int, intrinsic: int, ambient: int, seed: int = 0):
    pts = manifold_points(
        n, intrinsic_dim=intrinsic, ambient_dim=ambient, extent=_extent(n, intrinsic),
        seed=seed,
    )
    starts, ends = uniform_lifespans(n, horizon=60, max_len=20, seed=seed)
    return TemporalPointSet(pts, starts, ends, metric="l2")


def _extent(n: int, intrinsic: int, degree: float = 10.0) -> float:
    # Keep the expected unit-ball degree constant across intrinsic
    # dimensions: extent^d = n · vol(unit l2 ball in R^d) / degree.
    from math import gamma, pi

    ball_vol = pi ** (intrinsic / 2) / gamma(intrinsic / 2 + 1)
    return max((n * ball_vol / degree) ** (1.0 / intrinsic), 1.0)


def fresh_session(n: int, backend: str = "auto", first_tau: float = 16.0):
    """A new incremental session that has answered one initial query."""
    session = IncrementalTriangleSession(
        workload(n, "linf" if backend == "linf-exact" else "l2"),
        epsilon=EPSILON,
        backend=backend,
    )
    session.query(first_tau)
    return session
