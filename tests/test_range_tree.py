"""Unit tests for the range tree D_R (Appendix B.1)."""

import numpy as np
import pytest

from repro import ValidationError
from repro.rangetree import RangeTree, StabArray, box_intersect, closed_box


def brute_box(points, box):
    out = []
    for i, pt in enumerate(points):
        ok = True
        for c, (lo, lo_open, hi, hi_open) in zip(pt, box):
            if c < lo or (c == lo and lo_open):
                ok = False
                break
            if c > hi or (c == hi and hi_open):
                ok = False
                break
        if ok:
            out.append(i)
    return sorted(out)


class TestStabArray:
    def test_empty(self):
        sa = StabArray([])
        assert len(sa) == 0
        assert not sa.has_match((0.0, 0), 0.0)
        assert sa.collect((0.0, 0), 0.0) == []

    def test_prefix_and_filter(self):
        sa = StabArray([(0.0, 1, 5.0), (2.0, 2, 9.0), (4.0, 3, 3.0)])
        assert sorted(sa.collect((3.0, 0), 4.0)) == [1, 2]
        assert sorted(sa.collect((3.0, 0), 6.0)) == [2]
        assert sa.collect((0.0, 1), 0.0) == []

    def test_banded_collection(self):
        sa = StabArray([(0.0, 1, 5.0), (0.0, 2, 9.0)])
        assert sa.collect((1.0, 0), 4.0, 6.0) == [1]
        assert sa.collect((1.0, 0), 6.0, 10.0) == [2]

    def test_limit(self):
        sa = StabArray([(0.0, i, 10.0) for i in range(10)])
        assert len(sa.collect((5.0, 99), 1.0, limit=3)) == 3

    def test_has_match_uses_prefix_max(self):
        sa = StabArray([(0.0, 1, 2.0), (1.0, 2, 20.0)])
        assert sa.has_match((2.0, 0), 15.0)
        assert not sa.has_match((0.5, 99), 15.0)


class TestBoxOps:
    def test_closed_box(self):
        assert closed_box([0, 1], [2, 3]) == [
            (0.0, False, 2.0, False),
            (1.0, False, 3.0, False),
        ]

    def test_intersect_disjoint(self):
        a = closed_box([0], [1])
        b = closed_box([2], [3])
        assert box_intersect(a, b) is None

    def test_intersect_touching_closed(self):
        a = closed_box([0], [1])
        b = closed_box([1], [2])
        assert box_intersect(a, b) == [(1.0, False, 1.0, False)]

    def test_open_boundary_kills_touch(self):
        a = [(0.0, False, 1.0, True)]
        b = closed_box([1], [2])
        assert box_intersect(a, b) is None


class TestRangeTree:
    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            RangeTree(np.zeros((0, 2)), [], [])

    def test_box_dim_mismatch(self):
        tree = RangeTree(np.zeros((3, 2)), [0, 0, 0], [1, 1, 1])
        with pytest.raises(ValidationError):
            tree.query_nodes(closed_box([0], [1]))

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_leaves_partition_box_members(self, seed, dim):
        rng = np.random.default_rng(seed)
        n = 60
        pts = rng.uniform(0, 5, size=(n, dim))
        starts = rng.integers(0, 20, size=n).astype(float)
        ends = starts + rng.integers(0, 10, size=n)
        tree = RangeTree(pts, starts, ends)
        for _ in range(12):
            lo = rng.uniform(0, 4, size=dim)
            hi = lo + rng.uniform(0.2, 2.0, size=dim)
            box = closed_box(lo, hi)
            leaves = tree.query_nodes(box)
            everything_key = (float("inf"), 1 << 30)
            collected = []
            for leaf in leaves:
                collected.extend(leaf.collect(everything_key, -1e18))
            assert sorted(collected) == brute_box(pts, box)
            assert len(collected) == len(set(collected)), "leaf overlap"

    def test_half_open_sides(self):
        pts = np.array([[1.0], [2.0], [3.0]])
        tree = RangeTree(pts, [0, 0, 0], [9, 9, 9])
        key = (float("inf"), 1 << 30)
        box = [(1.0, False, 2.0, True)]  # [1, 2)
        got = []
        for leaf in tree.query_nodes(box):
            got.extend(leaf.collect(key, -1e18))
        assert got == [0]
        box = [(1.0, True, 3.0, False)]  # (1, 3]
        got = []
        for leaf in tree.query_nodes(box):
            got.extend(leaf.collect(key, -1e18))
        assert sorted(got) == [1, 2]

    def test_duplicate_coordinates(self):
        pts = np.array([[1.0, 1.0]] * 4 + [[2.0, 2.0]] * 3)
        tree = RangeTree(pts, [0] * 7, [9] * 7)
        key = (float("inf"), 1 << 30)
        got = []
        for leaf in tree.query_nodes(closed_box([1, 1], [1, 1])):
            got.extend(leaf.collect(key, -1e18))
        assert sorted(got) == [0, 1, 2, 3]
