"""Async bridge between the event loop and a shard's thread pool.

The serving loop never runs a solver on the event loop: plan execution
is pushed onto the shard's :class:`~concurrent.futures.ThreadPoolExecutor`
via :meth:`loop.run_in_executor`, and admission is bounded — a batch
that does not fit inside the shard's queue limit is rejected up front
(the HTTP layer turns that into a 429) instead of queueing without
bound.  Slots are released by a done-callback on each future, so a
client that disconnects mid-stream can never leak capacity.

With tenant weights configured (see :mod:`repro.serve.tenants`), the
queue also enforces **weighted fair shares**: tenant *t* may hold at
most ``max(1, floor(limit × weight_t / Σ weights))`` slots.  Shares
are static — derived from the configured weights, not from current
occupancy — so a saturating tenant is bounded by construction and can
never crowd the global limit against the others.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from ..engine import QueryPlan, QueryResult
from ..engine.executor import execute_plan
from ..errors import ReproError, ValidationError
from ..obs.trace import ExecTrace, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .registry import DatasetShard

__all__ = ["OverloadedError", "AdmissionQueue", "submit_plans"]


class OverloadedError(ReproError):
    """Raised when a shard cannot take a batch (HTTP 429).

    ``reason`` says which bound rejected it: ``"queue"`` (the shard's
    global admission limit), ``"share"`` (the tenant's fair share), or
    ``"quota"`` (the tenant's per-minute rate quota) — it becomes the
    ``reason`` label on ``serve_tenant_rejections_total``.
    """

    def __init__(
        self, message: str, retry_after: float = 1.0, reason: str = "queue"
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class AdmissionQueue:
    """Bounded counter of queued-plus-running queries for one shard."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValidationError(f"admission limit must be >= 1, got {limit!r}")
        self.limit = limit
        self._lock = threading.Lock()
        self._in_flight = 0
        self._rejected = 0
        self._shares: Dict[str, int] = {}
        self._tenant_in_flight: Dict[str, int] = {}
        self._tenant_rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def set_tenant_weights(self, weights: Mapping[str, float]) -> None:
        """Derive each tenant's static slot share from its weight."""
        total = sum(weights.values())
        with self._lock:
            if not weights or total <= 0:
                self._shares = {}
                return
            self._shares = {
                tenant: max(1, int(self.limit * weight / total))
                for tenant, weight in weights.items()
            }

    def share(self, tenant: str) -> Optional[int]:
        """The tenant's slot share, or ``None`` when unconstrained."""
        with self._lock:
            return self._shares.get(tenant)

    # ------------------------------------------------------------------
    def try_acquire(self, n: int = 1) -> bool:
        """Reserve ``n`` anonymous slots atomically; ``False`` if they don't fit."""
        return self.acquire_for(None, n) is None

    def acquire_for(self, tenant: Optional[str], n: int = 1) -> Optional[str]:
        """Reserve ``n`` slots for ``tenant``; the rejection reason or ``None``.

        Both bounds are checked atomically: the shard's global limit
        (reason ``"queue"``) and, for tenants with a configured weight,
        the tenant's static share (reason ``"share"``).
        """
        with self._lock:
            if self._in_flight + n > self.limit:
                self._rejected += n
                if tenant is not None:
                    self._tenant_rejected[tenant] = (
                        self._tenant_rejected.get(tenant, 0) + n
                    )
                return "queue"
            if tenant is not None:
                share = self._shares.get(tenant)
                held = self._tenant_in_flight.get(tenant, 0)
                if share is not None and held + n > share:
                    self._rejected += n
                    self._tenant_rejected[tenant] = (
                        self._tenant_rejected.get(tenant, 0) + n
                    )
                    return "share"
                self._tenant_in_flight[tenant] = held + n
            self._in_flight += n
            return None

    def release(self, n: int = 1, tenant: Optional[str] = None) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - n)
            if tenant is not None:
                held = self._tenant_in_flight.get(tenant, 0)
                self._tenant_in_flight[tenant] = max(0, held - n)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def rejected(self) -> int:
        """Cumulative count of slots denied at admission (telemetry)."""
        with self._lock:
            return self._rejected

    def tenant_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant occupancy/share/rejection counters (stats + metrics)."""
        with self._lock:
            tenants = set(self._tenant_in_flight) | set(self._tenant_rejected) | set(
                self._shares
            )
            return {
                tenant: {
                    "in_flight": self._tenant_in_flight.get(tenant, 0),
                    "rejected": self._tenant_rejected.get(tenant, 0),
                    "share": self._shares.get(tenant, 0),
                }
                for tenant in tenants
            }


def submit_plans(
    shard: "DatasetShard",
    plans: List[QueryPlan],
    tenant: Optional[str] = None,
    recorder: Optional[TraceRecorder] = None,
    parent_span_id: Optional[str] = None,
) -> "List[asyncio.Future[QueryResult]]":
    """Admit a batch and schedule every plan on the shard's executor.

    The whole batch is admitted atomically — all-or-nothing — so a
    half-admitted request can never wedge the queue.  Raises
    :class:`OverloadedError` when the slots don't fit (the shard limit,
    or ``tenant``'s fair share).  Each returned future releases its
    admission slot and bumps the shard's counters from a done-callback,
    whether or not the caller is still around to await it.

    When ``recorder`` is set, each plan carries an
    :class:`~repro.obs.trace.ExecTrace` into the executor — explicit,
    because contextvars do not follow ``run_in_executor`` — stamped
    with the submission instant so the engine can report the plan's
    queue wait as a span under ``parent_span_id``.
    """
    n = len(plans)
    denied = shard.admission.acquire_for(tenant, n)
    if denied == "share":
        raise OverloadedError(
            f"tenant {tenant!r} is at its fair share of dataset "
            f"{shard.name!r} ({shard.admission.share(tenant)} of "
            f"{shard.admission.limit} slots); retry later",
            reason="share",
        )
    if denied is not None:
        raise OverloadedError(
            f"dataset {shard.name!r} is at its admission limit "
            f"({shard.admission.limit} queries in flight); retry later"
        )
    loop = asyncio.get_running_loop()
    futures: "List[asyncio.Future[QueryResult]]" = []
    for index, plan in enumerate(plans):
        trace: Optional[ExecTrace] = None
        if recorder is not None and parent_span_id is not None:
            trace = ExecTrace(
                recorder=recorder,
                parent_id=parent_span_id,
                index=index,
                submitted_wall=time.time(),
                submitted_perf=time.perf_counter(),
            )
        try:
            future = loop.run_in_executor(
                shard.executor, execute_plan, plan, shard.cache, False, trace
            )
        except RuntimeError:
            # Executor already shut down (server stopping): give back the
            # slots nothing was scheduled for and surface as overload.
            shard.admission.release(n - len(futures), tenant=tenant)
            for f in futures:
                f.cancel()
            raise OverloadedError(
                f"dataset {shard.name!r} is shutting down"
            ) from None
        future.add_done_callback(_release_callback(shard, plan, tenant))
        futures.append(future)
    return futures


def _release_callback(
    shard: "DatasetShard", plan: QueryPlan, tenant: Optional[str]
):
    def _done(future: "asyncio.Future[QueryResult]") -> None:
        shard.admission.release(1, tenant=tenant)
        # The plan key's backend is the registry-resolved name, so the
        # shard's per-backend counters attribute work (and failures) to
        # the backend that actually ran — even when the future itself
        # died before producing a result envelope.
        if not future.cancelled() and future.exception() is None:
            result = future.result()
            shard.record_result(
                result.ok,
                backend=result.key.backend,
                cache_hit=result.cache_hit,
                build_seconds=result.build_seconds,
                query_seconds=result.query_seconds,
                template=plan.template or plan.spec.kind,
            )
        else:
            shard.record_result(
                False,
                backend=plan.key.backend,
                template=plan.template or plan.spec.kind,
            )

    return _done
