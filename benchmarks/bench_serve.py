#!/usr/bin/env python3
"""Closed-loop load driver for the serving front end → ``BENCH_serve.json``.

Boots an in-process server (ephemeral port), registers **two datasets
on separate shards**, then runs three phases:

1. **warmup** — one batch per dataset so every index the load phase
   needs is built (the steady-state serving regime the paper's
   preprocess-once economics predict);
2. **load** — closed-loop: ``--clients`` worker threads per dataset,
   each issuing ``--requests`` streamed query batches back-to-back over
   plain ``http.client``; per-request wall latencies are recorded;
3. **overload** — the shard's admission queue is saturated and a burst
   of requests is fired to demonstrate bounded-queue 429 rejection.

The emitted JSON carries latency percentiles, throughput, per-shard
cache statistics from ``GET /stats``, and the overload counts; CI
uploads it next to ``BENCH_smoke.json`` so the serving-path trajectory
accumulates run over run.  Exit code is non-zero if any phase misbehaves
(failed query, missing rejection, unclean shutdown), which doubles as
the CI serve smoke.

Usage::

    python benchmarks/bench_serve.py [--n 300] [--clients 4] [--requests 8]
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import statistics
import sys
import threading
import time

from repro.serve import start_server_thread

DATASETS = {
    "social": {"workload": "social", "n": None, "seed": 7},
    "coauthor": {"workload": "coauthor", "n": None, "seed": 3},
}

#: One mixed batch per request: a τ-sweep plus pair aggregates — all
#: cache hits after warmup, which is the serving regime under test.
QUERIES = {
    "social": [
        {"kind": "triangles", "taus": [1.5, 2.0, 3.0], "label": "sweep"},
        {"kind": "pairs-sum", "tau": 2.0},
        {"kind": "cliques", "tau": 2.0, "m": 3},
    ],
    "coauthor": [
        {"kind": "triangles", "taus": [15.0, 25.0], "label": "sweep"},
        {"kind": "pairs-union", "tau": 15.0, "kappa": 2},
    ],
}


def _request(host, port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _query_once(handle, dataset, include_records=False):
    t0 = time.perf_counter()
    status, data = _request(
        handle.host,
        handle.port,
        "POST",
        "/query",
        {
            "dataset": dataset,
            "queries": QUERIES[dataset],
            "include_records": include_records,
        },
    )
    latency = time.perf_counter() - t0
    if status != 200:
        return status, latency, None
    last = json.loads(data.decode().strip().rsplit("\n", 1)[-1])
    return status, latency, last


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=300, help="points per dataset")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop workers per dataset")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per worker")
    parser.add_argument("--queue-limit", type=int, default=16,
                        help="per-shard admission bound")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    failures = []
    handle = start_server_thread(queue_limit=args.queue_limit)
    try:
        # -- register two datasets, one shard each --------------------
        for name, spec in DATASETS.items():
            spec = dict(spec, n=args.n)
            status, data = _request(
                handle.host, handle.port, "POST", "/datasets",
                {"name": name, "dataset": spec},
            )
            if status != 201:
                failures.append(f"register {name}: HTTP {status} {data!r}")

        # -- warmup: build every index the load phase will hit --------
        build_seconds = {}
        for name in DATASETS:
            t0 = time.perf_counter()
            status, _latency, end = _query_once(handle, name)
            if status != 200 or end is None or not end.get("ok"):
                failures.append(f"warmup {name}: HTTP {status}, end={end}")
                continue
            build_seconds[name] = time.perf_counter() - t0

        # -- closed-loop load over both shards concurrently -----------
        latencies = {name: [] for name in DATASETS}
        errors = {name: 0 for name in DATASETS}

        def worker(name):
            for _ in range(args.requests):
                status, latency, end = _query_once(handle, name)
                if status == 200 and end is not None and end.get("ok"):
                    latencies[name].append(latency)
                else:
                    errors[name] += 1

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in DATASETS
            for _ in range(args.clients)
        ]
        t_load = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        load_wall = time.perf_counter() - t_load

        total_requests = sum(len(v) for v in latencies.values())
        if any(errors.values()):
            failures.append(f"load-phase errors: {errors}")

        # -- overload: prove the admission bound rejects, not buffers -
        shard = handle.app.registry.get("social")
        held = shard.admission.limit
        rejected = 0
        if not shard.admission.try_acquire(held):
            failures.append("could not saturate the admission queue")
        else:
            try:
                for _ in range(5):
                    status, _latency, _end = _query_once(handle, "social")
                    if status == 429:
                        rejected += 1
            finally:
                shard.admission.release(held)
        if rejected != 5:
            failures.append(f"expected 5 overload rejections, saw {rejected}")
        status, _latency, end = _query_once(handle, "social")
        if status != 200:
            failures.append(f"post-overload query failed: HTTP {status}")

        # -- per-shard statistics -------------------------------------
        status, data = _request(handle.host, handle.port, "GET", "/stats")
        stats = json.loads(data) if status == 200 else {}
        shards = stats.get("shards", {})
        if set(shards) != set(DATASETS):
            failures.append(f"expected shards {set(DATASETS)}, got {set(shards)}")

        per_dataset = {}
        for name, values in latencies.items():
            values = sorted(values)
            per_dataset[name] = {
                "requests": len(values),
                "errors": errors[name],
                "warmup_seconds": build_seconds.get(name),
                "latency_ms": {
                    "mean": statistics.fmean(values) * 1e3 if values else 0.0,
                    "p50": _percentile(values, 0.50) * 1e3,
                    "p90": _percentile(values, 0.90) * 1e3,
                    "p99": _percentile(values, 0.99) * 1e3,
                    "max": values[-1] * 1e3 if values else 0.0,
                },
                "shard": shards.get(name, {}),
            }

        payload = {
            "bench": "serve",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "config": {
                "n": args.n,
                "clients_per_dataset": args.clients,
                "requests_per_client": args.requests,
                "queue_limit": args.queue_limit,
            },
            "load": {
                "wall_seconds": load_wall,
                "total_requests": total_requests,
                "throughput_rps": total_requests / load_wall if load_wall else 0.0,
            },
            "overload": {
                "burst": 5,
                "rejected_429": rejected,
            },
            "datasets": per_dataset,
            "failures": failures,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)

        for name, entry in per_dataset.items():
            lat = entry["latency_ms"]
            cache = entry["shard"].get("cache", {})
            print(
                f"{name:10s} {entry['requests']:4d} req  "
                f"p50 {lat['p50']:6.1f} ms  p99 {lat['p99']:6.1f} ms  "
                f"cache hits {cache.get('hits', '?')} "
                f"builds {cache.get('builds', '?')}"
            )
        print(
            f"serve bench: {total_requests} requests in {load_wall:.2f}s "
            f"({payload['load']['throughput_rps']:.1f} req/s), "
            f"{rejected}/5 overload rejections -> {args.out}"
        )
    finally:
        try:
            handle.stop()
        except Exception as exc:  # noqa: BLE001
            failures.append(f"unclean shutdown: {exc}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
