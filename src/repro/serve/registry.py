"""Sharded dataset registry for the serving front end.

Each registered dataset gets its own :class:`DatasetShard` — a private
:class:`~repro.engine.cache.IndexCache`, a private
:class:`~concurrent.futures.ThreadPoolExecutor`, and a bounded
admission queue.  The isolation is the point: a hot dataset saturating
its workers or churning its cache cannot evict another dataset's
indexes or starve its queries, and later horizontal sharding (one
registry per process) drops in without touching the solvers.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..backends import default_registry as default_backend_registry
from ..datasets import workload_from_spec
from ..engine import IndexCache
from ..errors import BackendError, ReproError, ValidationError
from ..obs import MetricsRegistry
from ..types import TemporalPointSet
from .bridge import AdmissionQueue

__all__ = [
    "UnknownDatasetError",
    "DuplicateDatasetError",
    "DatasetShard",
    "DatasetRegistry",
]

#: Default bound on concurrently admitted (queued + running) queries
#: per shard; requests past the bound are rejected, never buffered.
DEFAULT_QUEUE_LIMIT = 64

#: Default resident-index bound per shard.  Bounded — unlike the
#: engine's library default — because a long-lived server must not grow
#: without limit under a churning query mix.
DEFAULT_MAX_ENTRIES = 32

#: Rebuild-on-threshold bound for appends: when one accepted batch
#: exceeds this fraction of the current point count, incremental index
#: maintenance is skipped and every cached family is invalidated — at
#: that scale a fresh build costs about the same as maintenance and the
#: append call should not pay either inline.
REBUILD_FRACTION = 0.5

#: Cap on per-line error strings echoed back in an append report.
MAX_EVENT_ERRORS = 8


def _parse_event(doc: Any, dim: int) -> tuple:
    """Validate one NDJSON event → ``(point, start, end)``.

    The wire shape is ``{"point": [x1, …, xd], "start": s, "end": e}``;
    a bare ``x`` is accepted for 1-d datasets.  Anything else raises
    :class:`~repro.errors.ValidationError` with a line-sized message.
    """
    if not isinstance(doc, Mapping):
        raise ValidationError(f"event must be an object, got {type(doc).__name__}")
    try:
        point = doc["point"]
        start = doc["start"]
        end = doc["end"]
    except KeyError as exc:
        raise ValidationError(f"event is missing {exc.args[0]!r}") from None
    if isinstance(point, (int, float)) and not isinstance(point, bool):
        point = [point]
    if (
        not isinstance(point, (list, tuple))
        or len(point) != dim
        or any(isinstance(c, bool) or not isinstance(c, (int, float)) for c in point)
    ):
        raise ValidationError(f"event point must be a list of {dim} numbers")
    for label, value in (("start", start), ("end", end)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"event {label!r} must be a number")
    if not all(math.isfinite(float(c)) for c in (*point, start, end)):
        raise ValidationError("event coordinates and lifespan must be finite")
    if float(end) < float(start):
        raise ValidationError(
            f"event lifespan end ({end!r}) before start ({start!r})"
        )
    return [float(c) for c in point], float(start), float(end)


class UnknownDatasetError(ReproError, KeyError):
    """Raised when a query names a dataset that was never registered."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else ""


class DuplicateDatasetError(ValidationError):
    """Raised when a name is already registered (HTTP maps this to 409)."""


def _default_shard_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def _normalise_default_backend(
    default_backend: Optional[str],
    tps: Optional[TemporalPointSet] = None,
    dataset_name: Optional[str] = None,
) -> Optional[str]:
    """Validate a default backend against the registry (and a dataset).

    ``None`` and ``"auto"`` both mean "no override" (cost-model
    dispatch); anything else must be a registered backend name.  When a
    dataset is at hand the backend's metric predicate is checked too,
    so an incompatible default — e.g. ``linf-exact`` over an ℓ2
    dataset — fails the ``POST /datasets`` call instead of every later
    query.  (Kind coverage is *not* required: a triangles-only default
    applies to the triangle queries and leaves other kinds on ``auto``;
    see :func:`repro.engine.spec.apply_default_backend`.)
    """
    if default_backend is None or default_backend == "auto":
        return None
    try:
        descriptor = default_backend_registry().get(default_backend)
    except BackendError as exc:
        raise ValidationError(str(exc)) from exc
    if tps is not None and not descriptor.supports_metric(tps.metric):
        where = f" for dataset {dataset_name!r}" if dataset_name else ""
        raise ValidationError(
            f"default_backend {descriptor.name!r} requires "
            f"{descriptor.metric_requirement}, but the dataset{where} uses "
            f"the {tps.metric.name!r} metric"
        )
    return default_backend


class DatasetShard:
    """One registered dataset plus everything needed to serve it."""

    def __init__(
        self,
        name: str,
        tps: TemporalPointSet,
        spec: Optional[Mapping[str, Any]] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        default_backend: Optional[str] = None,
    ) -> None:
        self.name = name
        self.tps = tps
        self.spec = dict(spec) if spec is not None else None
        #: Backend injected into queries that name none (explicit
        #: per-query backends always win, kinds it cannot serve stay on
        #: ``auto``); ``None`` keeps cost-model dispatch for everything.
        #: Metric compatibility is enforced against *this* dataset here,
        #: at registration time.
        self.default_backend = _normalise_default_backend(
            default_backend, tps=tps, dataset_name=name
        )
        self.cache = IndexCache(max_entries=max_entries)
        self.workers = max_workers if max_workers is not None else _default_shard_workers()
        self.executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=f"shard-{name}"
        )
        self.admission = AdmissionQueue(queue_limit)
        # monotonic: uptime must survive wall-clock steps (NTP, DST,
        # manual adjustment) without jumping or going negative.
        self.created_monotonic = time.monotonic()
        self._lock = threading.Lock()
        self._queries_total = 0
        self._errors_total = 0
        #: Per-resolved-backend serving counters (``/stats``): how many
        #: queries each backend answered, how many builds it paid for,
        #: and the wall time spent building vs querying.
        self._backend_counters: Dict[str, Dict[str, Any]] = {}
        #: Per-plan-template serving counters — which registered
        #: template (legacy kind or ``pattern-dsl``) answered each query.
        self._template_counters: Dict[str, Dict[str, Any]] = {}
        #: Single-writer gate for appends: one epoch bump at a time, so
        #: the ``tps`` swap plus cache advance is atomic w.r.t. other
        #: appenders (readers snapshot ``self.tps`` at plan time and
        #: are epoch-consistent by construction).
        self._append_lock = threading.Lock()
        self._events_accepted_total = 0
        self._events_rejected_total = 0
        self._append_batches_total = 0
        self._append_seconds_total = 0.0
        self._closed = False
        #: Event hook set by :meth:`DatasetRegistry.bind_metrics`; called
        #: (outside the shard lock) for every finished query so latency
        #: histograms observe through the same path /stats counts.
        self.metrics_observer = None

    # ------------------------------------------------------------------
    def record_result(
        self,
        ok: bool,
        backend: Optional[str] = None,
        cache_hit: bool = False,
        build_seconds: float = 0.0,
        query_seconds: float = 0.0,
        template: Optional[str] = None,
    ) -> None:
        """Bump the served/failed counters for one finished query.

        ``backend`` is the *resolved* backend name off the plan's cache
        key — per-backend accounting therefore reflects what actually
        ran, not what the client asked for (``auto`` never appears).
        ``template`` is the plan template that served the query (the
        spec's kind for legacy queries, ``pattern-dsl`` for compiled
        patterns) and feeds the per-template metric families.
        """
        with self._lock:
            self._queries_total += 1
            if not ok:
                self._errors_total += 1
            if template:
                tmpl = self._template_counters.setdefault(
                    template, {"queries": 0, "errors": 0}
                )
                tmpl["queries"] += 1
                if not ok:
                    tmpl["errors"] += 1
            if backend is None:
                return
            counters = self._backend_counters.setdefault(
                backend,
                {
                    "queries": 0,
                    "errors": 0,
                    "builds": 0,
                    "cache_hits": 0,
                    "build_seconds": 0.0,
                    "query_seconds": 0.0,
                },
            )
            counters["queries"] += 1
            if not ok:
                counters["errors"] += 1
            if cache_hit:
                counters["cache_hits"] += 1
            elif build_seconds > 0.0:
                counters["builds"] += 1
                counters["build_seconds"] += build_seconds
            counters["query_seconds"] += query_seconds
        observer = self.metrics_observer
        if observer is not None:
            observer(self.name, ok, backend, cache_hit, build_seconds, query_seconds)

    # ------------------------------------------------------------------
    def append_events(
        self, events: Union[str, bytes, Sequence[Any]]
    ) -> Dict[str, Any]:
        """Append an event batch, bump the epoch, maintain the cache.

        ``events`` is either raw NDJSON (``str``/``bytes``, one
        ``{"point": […], "start": s, "end": e}`` object per line — the
        ``POST /datasets/<name>/events`` body) or a sequence of parsed
        event documents.  Malformed lines are *rejected individually*
        and reported; accepted events become points ``n, n+1, …`` of
        the next dataset version.

        Single-writer semantics: one append at a time per shard.  On
        success the shard's ``tps`` is swapped to the merged version
        (epoch + 1) and the index cache is advanced — families whose
        indexes support incremental maintenance (the paper's online
        algorithms; currently durable triangles and SUM pairs over the
        grid backend) are migrated to the new epoch and keep hitting,
        the rest are
        invalidated and rebuild on their next query.  Batches larger
        than :data:`REBUILD_FRACTION` of the dataset skip maintenance
        entirely (rebuild-on-threshold).  Either way, queries after the
        append answer record-set-identically to a fresh registration of
        the merged point set.
        """
        if isinstance(events, bytes):
            events = events.decode("utf-8", "replace")
        errors: List[str] = []
        rejected = 0

        def reject(lineno: int, message: str) -> None:
            nonlocal rejected
            rejected += 1
            if len(errors) < MAX_EVENT_ERRORS:
                errors.append(f"line {lineno}: {message}")

        docs: List[tuple] = []
        if isinstance(events, str):
            parsed: List[Any] = []
            for lineno, line in enumerate(events.splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    parsed.append((lineno, json.loads(line)))
                except ValueError as exc:
                    reject(lineno, f"invalid JSON: {exc}")
        else:
            parsed = list(enumerate(events, start=1))

        with self._append_lock:
            old = self.tps
            for lineno, doc in parsed:
                try:
                    docs.append(_parse_event(doc, old.dim))
                except ValidationError as exc:
                    reject(lineno, str(exc))
            t0 = time.perf_counter()
            maintained_keys: List[Any] = []
            invalidated_keys: List[Any] = []
            if docs:
                merged = old.with_events(
                    np.asarray([d[0] for d in docs], dtype=float),
                    np.asarray([d[1] for d in docs], dtype=float),
                    np.asarray([d[2] for d in docs], dtype=float),
                )
                maintainer = None
                if len(docs) <= REBUILD_FRACTION * old.n:

                    def maintainer(key, index):
                        maintain = getattr(index, "maintained", None)
                        if maintain is None:
                            return None
                        try:
                            return maintain(merged)
                        except Exception:
                            # Maintenance must never fail an append; a
                            # dropped entry just rebuilds on next query.
                            return None

                moved = self.cache.advance(
                    old.fingerprint(), merged.fingerprint(), maintainer
                )
                maintained_keys = moved["migrated"]
                invalidated_keys = moved["invalidated"]
                # The swap is the commit point: queries planned from
                # here on see the new epoch and mint new cache keys.
                self.tps = merged
            append_seconds = time.perf_counter() - t0
            current = self.tps
            with self._lock:
                self._append_batches_total += 1
                self._events_accepted_total += len(docs)
                self._events_rejected_total += rejected
                self._append_seconds_total += append_seconds
        return {
            "name": self.name,
            "epoch": current.epoch,
            "fingerprint": current.fingerprint(),
            "n": current.n,
            "accepted": len(docs),
            "rejected": rejected,
            "errors": errors,
            "maintained_families": sorted({k.family for k in maintained_keys}),
            "invalidated_families": sorted({k.family for k in invalidated_keys}),
            "append_seconds": append_seconds,
        }

    def describe(self) -> Dict[str, Any]:
        """JSON-ready dataset identity (the ``POST /datasets`` reply)."""
        return {
            "name": self.name,
            "n": self.tps.n,
            "dim": self.tps.dim,
            "metric": self.tps.metric.name,
            "fingerprint": self.tps.fingerprint(),
            "epoch": self.tps.epoch,
            "default_backend": self.default_backend,
        }

    def backend_counters(self) -> Dict[str, Dict[str, Any]]:
        """A consistent copy of the per-backend counters (metrics callbacks)."""
        with self._lock:
            return {
                name: dict(counters)
                for name, counters in self._backend_counters.items()
            }

    def template_counters(self) -> Dict[str, Dict[str, Any]]:
        """A consistent copy of the per-template counters (metrics callbacks)."""
        with self._lock:
            return {
                name: dict(counters)
                for name, counters in self._template_counters.items()
            }

    def stats(self) -> Dict[str, Any]:
        """JSON-ready serving + cache statistics (the ``GET /stats`` shape)."""
        with self._lock:
            queries_total = self._queries_total
            errors_total = self._errors_total
            backends = {
                name: dict(counters)
                for name, counters in self._backend_counters.items()
            }
            templates = {
                name: dict(counters)
                for name, counters in self._template_counters.items()
            }
            events = {
                "accepted_total": self._events_accepted_total,
                "rejected_total": self._events_rejected_total,
                "batches_total": self._append_batches_total,
                "append_seconds_total": self._append_seconds_total,
            }
        tenants = self.admission.tenant_snapshot()
        out = {
            "dataset": self.describe(),
            "cache": self.cache.stats.snapshot().as_dict(),
            "resident_indexes": len(self.cache),
            "workers": self.workers,
            "queue_limit": self.admission.limit,
            "in_flight": self.admission.in_flight,
            "rejected": self.admission.rejected,
            "queries_total": queries_total,
            "errors_total": errors_total,
            "backends": backends,
            "templates": templates,
            "events": events,
            "uptime_seconds": time.monotonic() - self.created_monotonic,
        }
        if tenants:
            out["tenants"] = tenants
        return out

    def close(self) -> None:
        """Shut the shard's executor down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.executor.shutdown(wait=True, cancel_futures=True)


class DatasetRegistry:
    """Thread-safe name → :class:`DatasetShard` mapping."""

    def __init__(
        self,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        default_backend: Optional[str] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValidationError(f"queue_limit must be >= 1, got {queue_limit!r}")
        self.default_max_entries = max_entries
        self.default_max_workers = max_workers
        self.default_queue_limit = queue_limit
        # Validated eagerly: a bad server-wide --backend should fail at
        # boot, not at the first dataset registration.
        self.default_backend = _normalise_default_backend(default_backend)
        #: Tenant name → admission weight, applied to every shard's
        #: queue (see :meth:`set_tenant_weights`).
        self.tenant_weights: Dict[str, float] = {}
        self._metrics: Optional[MetricsRegistry] = None
        self._metrics_query_seconds = None
        self._lock = threading.Lock()
        self._shards: Dict[str, DatasetShard] = {}
        #: Names whose registration is materialising right now — reserved
        #: under the lock so a racing duplicate fails fast instead of
        #: wasting a full workload build.
        self._reserved: set = set()

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        dataset: Union[TemporalPointSet, Mapping[str, Any]],
        max_entries: Optional[int] = None,
        max_workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        default_backend: Optional[str] = None,
        replace: bool = False,
    ) -> DatasetShard:
        """Materialise (if needed) and register a dataset under ``name``.

        ``dataset`` is either a ready :class:`TemporalPointSet` or a
        declarative spec for :func:`~repro.datasets.workload_from_spec`
        (the wire format of ``POST /datasets``).  ``default_backend``
        (falling back to the registry-wide default) is injected into
        queries against this dataset that name no backend of their own.
        Registering an existing name raises
        :class:`DuplicateDatasetError` unless ``replace=True``, in
        which case the old shard is closed.  The name is reserved
        before the (possibly slow) workload build, so a duplicate —
        racing or not — is rejected before any work.
        """
        if not isinstance(name, str) or not name or "/" in name or name != name.strip():
            raise ValidationError(
                f"dataset name must be a non-empty string without '/', got {name!r}"
            )
        with self._lock:
            if (name in self._shards or name in self._reserved) and not replace:
                raise DuplicateDatasetError(
                    f"dataset {name!r} is already registered; pass replace to overwrite"
                )
            if name in self._reserved:
                # replace=True cannot race a concurrent registration of
                # the same name either: there is one slot to take over.
                raise DuplicateDatasetError(
                    f"dataset {name!r} is being registered by another request"
                )
            self._reserved.add(name)
        try:
            if isinstance(dataset, TemporalPointSet):
                tps, spec = dataset, None
            else:
                tps, spec = workload_from_spec(dataset), dataset
            shard = DatasetShard(
                name,
                tps,
                spec=spec,
                max_entries=max_entries if max_entries is not None else self.default_max_entries,
                max_workers=max_workers if max_workers is not None else self.default_max_workers,
                queue_limit=queue_limit if queue_limit is not None else self.default_queue_limit,
                default_backend=(
                    default_backend
                    if default_backend is not None
                    else self.default_backend
                ),
            )
            if self.tenant_weights:
                shard.admission.set_tenant_weights(self.tenant_weights)
            shard.metrics_observer = self._observe_query
            with self._lock:
                old = self._shards.get(name)
                self._shards[name] = shard
        finally:
            with self._lock:
                self._reserved.discard(name)
        if old is not None:
            old.close()
        return shard

    # ------------------------------------------------------------------
    def set_tenant_weights(self, weights: Mapping[str, float]) -> None:
        """Apply tenant admission weights to every current and future shard."""
        self.tenant_weights = dict(weights)
        for shard in self.shards():
            shard.admission.set_tenant_weights(self.tenant_weights)

    def shards(self) -> List[DatasetShard]:
        """A point-in-time copy of the live shards (metrics callbacks)."""
        with self._lock:
            return list(self._shards.values())

    def _observe_query(
        self,
        dataset: str,
        ok: bool,
        backend: Optional[str],
        cache_hit: bool,
        build_seconds: float,
        query_seconds: float,
    ) -> None:
        hist = self._metrics_query_seconds
        if hist is not None and ok:
            hist.labels(dataset=dataset).observe(query_seconds)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Register the ``serve_*`` families against this registry.

        Almost everything is a render-time callback over the live
        shards — cache counters, queue occupancy, per-backend totals
        are already tracked by the shards for ``/stats``, so scraping
        reads the same state instead of double-counting.  The one
        event-driven family is the per-query latency histogram, fed by
        each shard's ``metrics_observer`` hook.

        Rebinding (a registry handed to a second app) simply registers
        the families against the new app's metrics registry; the old
        binding's callbacks keep reading the same live shards.
        """
        self._metrics = metrics
        self._metrics_query_seconds = metrics.histogram(
            "serve_query_seconds",
            "Per-query execution wall seconds (successful queries).",
            ("dataset",),
        )

        def per_shard(fn):
            def collect():
                return [
                    ({"dataset": shard.name}, fn(shard)) for shard in self.shards()
                ]

            return collect

        metrics.callback(
            "serve_datasets", "gauge", "Registered datasets.",
            lambda: [({}, len(self))],
        )
        metrics.callback(
            "serve_cache_hits_total", "counter",
            "Index-cache hits (an index was resident).",
            per_shard(lambda s: s.cache.stats.hits),
        )
        metrics.callback(
            "serve_cache_misses_total", "counter",
            "Index-cache misses (a build was needed).",
            per_shard(lambda s: s.cache.stats.misses),
        )
        metrics.callback(
            "serve_cache_evictions_total", "counter",
            "Indexes evicted by the shard's resident-entry bound.",
            per_shard(lambda s: s.cache.stats.evictions),
        )
        metrics.callback(
            "serve_cache_build_seconds_total", "counter",
            "Wall seconds spent building indexes.",
            per_shard(lambda s: s.cache.stats.build_seconds),
        )
        metrics.callback(
            "serve_cache_resident_indexes", "gauge",
            "Indexes currently resident in the shard's cache.",
            per_shard(lambda s: len(s.cache)),
        )
        metrics.callback(
            "serve_queue_depth", "gauge",
            "Admitted (queued + running) queries on the shard.",
            per_shard(lambda s: s.admission.in_flight),
        )
        metrics.callback(
            "serve_queue_limit", "gauge",
            "The shard's admission limit.",
            per_shard(lambda s: s.admission.limit),
        )
        metrics.callback(
            "serve_admission_rejected_total", "counter",
            "Query slots denied at admission (any bound).",
            per_shard(lambda s: s.admission.rejected),
        )
        metrics.callback(
            "serve_dataset_epoch", "gauge",
            "Dataset version: event batches appended since registration.",
            per_shard(lambda s: s.tps.epoch),
        )
        metrics.callback(
            "serve_events_appended_total", "counter",
            "Events accepted into the dataset by appends.",
            per_shard(lambda s: s._events_accepted_total),
        )
        metrics.callback(
            "serve_events_rejected_total", "counter",
            "Event lines rejected by append validation.",
            per_shard(lambda s: s._events_rejected_total),
        )
        metrics.callback(
            "serve_append_batches_total", "counter",
            "Append requests processed (including all-rejected ones).",
            per_shard(lambda s: s._append_batches_total),
        )
        metrics.callback(
            "serve_append_seconds_total", "counter",
            "Wall seconds spent merging appends and maintaining indexes.",
            per_shard(lambda s: s._append_seconds_total),
        )
        metrics.callback(
            "serve_cache_migrated_total", "counter",
            "Indexes carried across an epoch bump by incremental maintenance.",
            per_shard(lambda s: s.cache.stats.migrated),
        )
        metrics.callback(
            "serve_cache_invalidated_total", "counter",
            "Indexes invalidated by an epoch bump (rebuild on next query).",
            per_shard(lambda s: s.cache.stats.invalidated),
        )

        def backend_samples(field):
            def collect():
                out = []
                for shard in self.shards():
                    for backend, counters in shard.backend_counters().items():
                        out.append(
                            (
                                {"dataset": shard.name, "backend": backend},
                                counters[field],
                            )
                        )
                return out

            return collect

        metrics.callback(
            "serve_queries_total", "counter",
            "Finished queries by resolved backend.",
            backend_samples("queries"),
        )
        metrics.callback(
            "serve_query_errors_total", "counter",
            "Failed queries by resolved backend.",
            backend_samples("errors"),
        )

        def template_samples(field):
            def collect():
                out = []
                for shard in self.shards():
                    for template, counters in shard.template_counters().items():
                        out.append(
                            (
                                {"dataset": shard.name, "template": template},
                                counters[field],
                            )
                        )
                return out

            return collect

        metrics.callback(
            "serve_template_queries_total", "counter",
            "Finished queries by plan template (query kind).",
            template_samples("queries"),
        )
        metrics.callback(
            "serve_template_query_errors_total", "counter",
            "Failed queries by plan template (query kind).",
            template_samples("errors"),
        )

        def tenant_in_flight():
            out = []
            for shard in self.shards():
                for tenant, counters in shard.admission.tenant_snapshot().items():
                    out.append(
                        (
                            {"dataset": shard.name, "tenant": tenant},
                            counters["in_flight"],
                        )
                    )
            return out

        metrics.callback(
            "serve_tenant_in_flight", "gauge",
            "Admission slots a tenant currently holds on the shard.",
            tenant_in_flight,
        )

    def get(self, name: str) -> DatasetShard:
        with self._lock:
            shard = self._shards.get(name)
        if shard is None:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; registered: {self.names() or '(none)'}"
            )
        return shard

    def remove(self, name: str) -> DatasetShard:
        """Unregister ``name`` and close its shard (``DELETE /datasets/…``).

        Closing waits for the shard's running queries (their admission
        slots release via done-callbacks) and cancels queued work, then
        the shard's index cache is dropped so its indexes can be
        reclaimed.  The name is immediately free for re-registration.
        Raises :class:`UnknownDatasetError` for names never registered.
        """
        with self._lock:
            shard = self._shards.pop(name, None)
        if shard is None:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; registered: {self.names() or '(none)'}"
            )
        shard.close()
        shard.cache.clear()
        return shard

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._shards

    def stats(self) -> Dict[str, Any]:
        """Per-shard statistics keyed by dataset name."""
        with self._lock:
            shards = list(self._shards.values())
        return {shard.name: shard.stats() for shard in shards}

    def close(self) -> None:
        """Close every shard (idempotent)."""
        with self._lock:
            shards = list(self._shards.values())
            self._shards.clear()
        for shard in shards:
            shard.close()
