"""Cover tree (net hierarchy) and its ball-reporting query (Appendix A)."""

from .build import NetHierarchy, NetLevel, build_hierarchy, greedy_net
from .ball_query import CoverTreeDecomposition
from .validate import check_invariants

__all__ = [
    "NetHierarchy",
    "NetLevel",
    "build_hierarchy",
    "greedy_net",
    "CoverTreeDecomposition",
    "check_invariants",
]
