"""Bounded per-process trace retention plus the slow-query log.

Every request records spans unconditionally (the cost is list appends);
*retention* is decided once, when the finished trace is offered to the
store:

* error traces and traces at/over the slow threshold are **always**
  kept — the traces an operator actually goes looking for must never
  be sampled away;
* everything else survives with probability ``sample``
  (``--trace-sample``, head sampling in the sense that one coin flip
  covers the whole trace).

Kept traces live in a ring buffer (``capacity`` newest traces; older
ones are evicted FIFO), so memory is bounded no matter the traffic
rate.  Slow queries additionally emit one NDJSON record to the
configured stream (stderr by default) with the trace id, dataset,
tenant, template and a per-span-name stage breakdown — greppable
without any endpoint.

The store is also the source for ``GET /debug/traces`` (recent
summaries, filterable) and ``GET /debug/traces/<id>`` (full span set).
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, TextIO

from .trace import TraceRecorder

__all__ = ["TraceStore", "DEFAULT_TRACE_CAPACITY", "DEFAULT_TRACE_SAMPLE",
           "DEFAULT_SLOW_QUERY_MS"]

#: Traces retained per process before FIFO eviction.
DEFAULT_TRACE_CAPACITY = 512

#: Fraction of fast, successful traces kept (slow + error always kept).
DEFAULT_TRACE_SAMPLE = 1.0

#: Root duration at/above which a trace counts as slow.
DEFAULT_SLOW_QUERY_MS = 500.0


class TraceStore:
    """Ring buffer of finished traces + slow-query NDJSON log."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        sample: float = DEFAULT_TRACE_SAMPLE,
        slow_ms: float = DEFAULT_SLOW_QUERY_MS,
        slow_log: Optional[TextIO] = None,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.sample = min(1.0, max(0.0, float(sample)))
        self.slow_ms = float(slow_ms)
        self._slow_log = slow_log
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        # Counters, exported as metrics by the serving tiers.
        self.offered_total = 0
        self.stored_total = 0
        self.sampled_out_total = 0
        self.evicted_total = 0
        self.slow_queries_total = 0

    # ------------------------------------------------------------------
    def offer(self, recorder: TraceRecorder, route: str = "",
              status: str = "ok", duration_ms: Optional[float] = None,
              attrs: Optional[Dict[str, Any]] = None) -> bool:
        """Decide retention for a finished trace; returns True if kept.

        ``duration_ms``/``status`` describe the root of the local
        subtree (the request as this process saw it); ``attrs`` carries
        the summary fields (dataset, tenant, template) the slow-query
        log and the ``/debug/traces`` listing surface.
        """
        spans = [span.to_dict() for span in recorder.spans()]
        if duration_ms is None:
            duration_ms = max(
                (s["duration_ms"] for s in spans if s.get("parent_id") is None),
                default=0.0,
            )
        attrs = dict(attrs) if attrs else {}
        is_error = status != "ok" or any(s["status"] != "ok" for s in spans)
        is_slow = duration_ms >= self.slow_ms
        record = {
            "trace_id": recorder.trace_id,
            "route": route,
            "status": "error" if is_error else "ok",
            "duration_ms": round(duration_ms, 3),
            "slow": is_slow,
            "spans": spans,
            "recorded": time.time(),
            **{k: v for k, v in attrs.items() if v is not None},
        }
        if is_slow and attrs.get("dataset") is not None:
            self._emit_slow(record)
        with self._lock:
            self.offered_total += 1
            keep = is_error or is_slow or self._sampled_in()
            if not keep:
                self.sampled_out_total += 1
                return False
            self._traces[recorder.trace_id] = record
            self._traces.move_to_end(recorder.trace_id)
            self.stored_total += 1
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.evicted_total += 1
        return True

    def _sampled_in(self) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return random.random() < self.sample

    def _emit_slow(self, record: Dict[str, Any]) -> None:
        """One NDJSON line per slow query: correlatable and greppable."""
        breakdown: Dict[str, float] = {}
        for span in record["spans"]:
            name = span["name"]
            breakdown[name] = round(
                breakdown.get(name, 0.0) + span["duration_ms"], 3
            )
        line = {
            "slow_query": True,
            "trace_id": record["trace_id"],
            "route": record["route"],
            "status": record["status"],
            "duration_ms": record["duration_ms"],
            "dataset": record.get("dataset"),
            "tenant": record.get("tenant"),
            "template": record.get("template"),
            "breakdown_ms": breakdown,
        }
        with self._lock:
            self.slow_queries_total += 1
        stream = self._slow_log if self._slow_log is not None else sys.stderr
        try:
            stream.write(json.dumps(line, sort_keys=True) + "\n")
            stream.flush()
        except (OSError, ValueError):  # closed stream must not fail a request
            pass

    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Full trace document for one id, or ``None``."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return None
            doc = dict(record)
            doc["spans"] = list(record["spans"])
            return doc

    def recent(self, limit: int = 50, min_duration_ms: Optional[float] = None,
               dataset: Optional[str] = None,
               route: Optional[str] = None) -> List[Dict[str, Any]]:
        """Newest-first summaries (no span bodies), filterable."""
        with self._lock:
            records = list(self._traces.values())
        out: List[Dict[str, Any]] = []
        for record in reversed(records):
            if min_duration_ms is not None and record["duration_ms"] < min_duration_ms:
                continue
            if dataset is not None and record.get("dataset") != dataset:
                continue
            if route is not None and record.get("route") != route:
                continue
            out.append({k: v for k, v in record.items() if k != "spans"}
                       | {"spans": len(record["spans"])})
            if len(out) >= limit:
                break
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "resident": len(self._traces),
                "capacity": self.capacity,
                "sample": self.sample,
                "slow_ms": self.slow_ms,
                "offered": self.offered_total,
                "stored": self.stored_total,
                "sampled_out": self.sampled_out_total,
                "evicted": self.evicted_total,
                "slow_queries": self.slow_queries_total,
            }
