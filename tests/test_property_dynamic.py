"""Hypothesis property tests for the dynamic structure (Appendix C)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import DynamicTriangleStream, TemporalPointSet
from repro.baselines import triangle_bounds
from repro.core.dynamic import DynamicDurableStructure

coords = st.integers(0, 5).map(lambda v: v / 2.0)
times = st.integers(0, 10).map(float)
durs = st.integers(0, 8).map(float)


@st.composite
def instances(draw, max_n=12):
    n = draw(st.integers(3, max_n))
    pts = [[draw(coords), draw(coords)] for _ in range(n)]
    starts = [draw(times) for _ in range(n)]
    ends = [s + draw(durs) for s in starts]
    return np.array(pts), np.array(starts), np.array(ends)


class TestStreamProperties:
    @given(instances(), st.sampled_from([1.0, 2.0, 4.0]))
    @settings(max_examples=50, deadline=None)
    def test_replay_equals_offline(self, inst, tau):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        recs = DynamicTriangleStream(tps, tau, epsilon=0.5).run()
        keys = [r.key for r in recs]
        assert len(keys) == len(set(keys))
        must, may = triangle_bounds(tps, tau, 0.5)
        assert must <= set(keys) <= may

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_reports_have_valid_durability(self, inst):
        pts, starts, ends = inst
        tau = 2.0
        tps = TemporalPointSet(pts, starts, ends)
        for ev in DynamicTriangleStream(tps, tau, epsilon=0.5).events():
            for r in ev.triangles:
                assert r.durability >= tau
                assert r.lifespan == tps.pattern_lifespan(r.ids)
                # Reported exactly at the anchor's maturity instant.
                assert ev.time == float(tps.starts[r.anchor]) + tau


class TestRandomisedInsertDelete:
    @given(instances(max_n=10), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_interleaved_operations_consistent(self, inst, rnd):
        """Arbitrary valid insert/delete interleavings: reports at insert
        must match brute force over the currently-live set."""
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        st_dyn = DynamicDurableStructure(tps, epsilon=0.5)
        alive = set()
        order = list(range(tps.n))
        rnd.shuffle(order)
        for p in order:
            # Randomly delete someone first.
            if alive and rnd.random() < 0.4:
                victim = rnd.choice(sorted(alive))
                st_dyn.delete(victim)
                alive.remove(victim)
            recs = st_dyn.insert(p)
            keys = {r.key for r in recs}
            # Exact triangles among live partners must all be reported.
            must = set()
            for a in alive:
                for b in alive:
                    if a >= b:
                        continue
                    if (
                        tps.dist(p, a) <= 1.0
                        and tps.dist(p, b) <= 1.0
                        and tps.dist(a, b) <= 1.0
                    ):
                        must.add(tuple(sorted((p, a, b))))
            assert must <= keys
            # And nothing reported may involve a dead or unknown point.
            for r in recs:
                assert r.anchor == p
                assert {r.q, r.s} <= alive
            alive.add(p)
