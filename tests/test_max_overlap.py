"""Tests for the max-overlap index (IT∪, Appendix E)."""

import numpy as np
import pytest

from repro.temporal import MaxOverlapIndex

from conftest import random_intervals


def make_index(ivs, ids=None):
    ids = list(range(len(ivs))) if ids is None else ids
    return MaxOverlapIndex([a for a, _ in ivs], [b for _, b in ivs], ids)


def brute_best(ivs, ids, a, b, exclude=()):
    best = None
    for (lo, hi), pid in zip(ivs, ids):
        if pid in exclude:
            continue
        ov = min(hi, b) - max(lo, a)
        if ov > 0 and (best is None or ov > best[0]):
            best = (ov, pid)
    return best


class TestBestOverlap:
    def test_empty(self):
        idx = make_index([])
        assert idx.best_overlap(0.0, 10.0) is None

    def test_inverted_query(self):
        idx = make_index([(0.0, 10.0)])
        assert idx.best_overlap(5.0, 3.0) is None

    def test_stab_left_candidate(self):
        idx = make_index([(0.0, 4.0), (0.0, 9.0)])
        got = idx.best_overlap(2.0, 20.0)
        assert got is not None and got[1] == 1 and got[0] == 7.0

    def test_stab_right_candidate(self):
        idx = make_index([(8.0, 20.0), (3.0, 20.0)])
        got = idx.best_overlap(0.0, 10.0)
        assert got is not None and got[1] == 1 and got[0] == 7.0

    def test_contained_candidate(self):
        idx = make_index([(2.0, 3.0), (4.0, 9.0)])
        got = idx.best_overlap(0.0, 10.0)
        assert got is not None and got[1] == 1 and got[0] == 5.0

    def test_no_positive_overlap(self):
        idx = make_index([(0.0, 1.0)])
        assert idx.best_overlap(1.0, 5.0) is None  # touching = zero overlap

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute(self, seed):
        ivs = random_intervals(70, seed=seed)
        ids = list(range(len(ivs)))
        idx = make_index(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(40):
            a = float(rng.uniform(-10, 80))
            b = a + float(rng.uniform(0, 40))
            got = idx.best_overlap(a, b)
            want = brute_best(ivs, ids, a, b)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert abs(got[0] - want[0]) < 1e-9  # same optimal overlap


class TestExclusions:
    @pytest.mark.parametrize("seed", range(6))
    def test_excluding_two_still_optimal(self, seed):
        ivs = random_intervals(40, seed=seed + 11)
        ids = list(range(len(ivs)))
        idx = make_index(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            a = float(rng.uniform(-5, 60))
            b = a + float(rng.uniform(0, 30))
            excl = {int(rng.integers(0, 40)), int(rng.integers(0, 40))}
            got = idx.best_overlap(a, b, exclude=excl)
            want = brute_best(ivs, ids, a, b, exclude=excl)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert abs(got[0] - want[0]) < 1e-9
                assert got[1] not in excl

    def test_exclude_all_members(self):
        idx = make_index([(0.0, 10.0), (1.0, 9.0)])
        assert idx.best_overlap(2.0, 5.0, exclude={0, 1}) is None

    def test_exclusion_falls_back_to_second_best(self):
        idx = make_index([(0.0, 100.0), (0.0, 50.0)])
        got = idx.best_overlap(0.0, 60.0, exclude={0})
        assert got is not None and got[1] == 1 and got[0] == 50.0
