"""Dynamic durable-triangle reporting — Appendix C (Theorem C.1).

``DynamicOffDurable``: points arrive and depart according to their
lifespans; when a point ``p`` has been alive for ``τ`` (time
``I⁻_p + τ``) it *matures* and every new τ-durable triangle anchored at
``p`` must be reported.

Two observations drive the implementation:

* At ``p``'s maturity instant the structure contains exactly the points
  ``q`` with ``(I⁻_q, id) <lex (I⁻_p, id)`` and ``I⁺_q ≥ I⁻_p + τ`` —
  the ``durableBallQ`` predicate — so the dynamic structure needs *no*
  temporal filtering, only liveness (the min-heap staging of Appendix C
  becomes the event schedule of :class:`DynamicTriangleStream`).
* The static decomposition is made insertion-friendly with the
  logarithmic method ([22, 42, 43] in the paper): ``O(log n)`` groups
  ``G_i``, each a static cover-tree decomposition; an insert rebuilds
  the smallest empty slot from the prefix groups; a delete tombstones
  the point; the whole structure compacts after ``n/2`` updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StructureError, ValidationError
from ..structures.decomposition import SpatialDecomposition
from ..structures.durable_ball import make_decomposition
from ..temporal.interval import Interval
from ..types import TemporalPointSet, TriangleRecord

__all__ = ["DynamicDurableStructure", "DynamicTriangleStream", "StreamEvent"]


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One replayed event: a maturity ('activate') or a departure ('delete')."""

    time: float
    kind: str  # "activate" | "delete"
    point: int
    triangles: Tuple[TriangleRecord, ...] = ()


class DynamicDurableStructure:
    """Logarithmic-method collection of static decompositions.

    ``insert`` places a live point and reports all triangles it anchors
    against the current contents; ``delete`` tombstones a point.  The
    per-group canonical balls of *all* groups participate in the
    Algorithm 1 pairing, matching the ``O(ε^{-ρ} log n)`` canonical-node
    bound of Appendix C.
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
        self.tps = tps
        self.epsilon = float(epsilon)
        self.backend = backend
        self.resolution = epsilon / 4.0
        self._slots: List[Optional[Tuple[List[int], SpatialDecomposition]]] = []
        self._alive = np.zeros(tps.n, dtype=bool)
        self._inserted = np.zeros(tps.n, dtype=bool)
        self._updates_since_rebuild = 0
        self.n_group_rebuilds = 0
        self.n_full_rebuilds = 0

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return int(self._alive.sum())

    def insert(self, p: int) -> List[TriangleRecord]:
        """Insert a matured point; report the triangles it anchors."""
        if self._inserted[p]:
            raise StructureError(f"point {p} was already inserted")
        self._alive[p] = True
        self._inserted[p] = True
        self._place([p])
        self._updates_since_rebuild += 1
        self._maybe_compact()
        return self._report_anchor(p)

    def delete(self, p: int) -> None:
        """Tombstone a departed point."""
        if not self._alive[p]:
            raise StructureError(f"point {p} is not alive")
        self._alive[p] = False
        self._updates_since_rebuild += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    def _place(self, new_ids: Sequence[int]) -> None:
        # Logarithmic method: merge prefix groups into the first free slot.
        pool: List[int] = [i for i in new_ids if self._alive[i]]
        slot = 0
        while slot < len(self._slots) and self._slots[slot] is not None:
            ids, _ = self._slots[slot]  # type: ignore[misc]
            pool.extend(i for i in ids if self._alive[i])
            self._slots[slot] = None
            slot += 1
        if slot == len(self._slots):
            self._slots.append(None)
        if pool:
            sub_points = self.tps.points[pool]
            dec = make_decomposition(
                self.tps.subset(pool), self.resolution, self.backend
            )
            # Re-map the subset decomposition's member ids to global ids.
            for g in dec.groups:
                g.member_ids = [pool[i] for i in g.member_ids]
            self._slots[slot] = (pool, dec)
        self.n_group_rebuilds += 1

    def _maybe_compact(self) -> None:
        total = int(self._inserted.sum())
        if total and self._updates_since_rebuild > max(4, total // 2):
            live = [int(i) for i in np.nonzero(self._alive)[0]]
            self._slots = []
            self._alive[:] = False
            for i in live:
                self._alive[i] = True
            if live:
                self._place(live)
            self._updates_since_rebuild = 0
            self.n_full_rebuilds += 1

    # ------------------------------------------------------------------
    def _report_anchor(self, p: int) -> List[TriangleRecord]:
        tps = self.tps
        point = tps.points[p]
        balls: List[Tuple[object, List[int]]] = []
        for slot in self._slots:
            if slot is None:
                continue
            _, dec = slot
            for gi in dec.candidate_groups(point, 1.0):
                g = dec.groups[gi]
                members = [
                    i for i in g.member_ids if self._alive[i] and i != p
                ]
                if members:
                    balls.append((g, members))
        out: List[TriangleRecord] = []
        sp = float(tps.starts[p])
        ep = float(tps.ends[p])

        def record(a: int, b: int) -> TriangleRecord:
            q, s = (a, b) if a < b else (b, a)
            end = min(ep, float(tps.ends[q]), float(tps.ends[s]))
            return TriangleRecord(anchor=p, q=q, s=s, lifespan=Interval(sp, end))

        metric = tps.metric
        for g, members in balls:
            for a, b in combinations(members, 2):
                out.append(record(a, b))
        for i in range(len(balls)):
            gi, mi = balls[i]
            for j in range(i + 1, len(balls)):
                gj, mj = balls[j]
                d = metric.dist(gi.rep, gj.rep)  # type: ignore[attr-defined]
                if d <= 1.0 + gi.radius_bound + gj.radius_bound + 1e-9:  # type: ignore[attr-defined]
                    for a in mi:
                        for b in mj:
                            out.append(record(a, b))
        return out


class DynamicTriangleStream:
    """Replay a temporal point set as a maturity/departure event stream.

    For durability ``τ``, point ``p`` matures at ``I⁻_p + τ`` (if it
    lives that long) and departs at ``I⁺_p``.  Activations at equal
    times are ordered by ``(I⁻, id)`` — the anchor order — and precede
    deletions at the same instant, so every τ-durable triangle is
    reported exactly at its anchor's maturity.
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        tau: float,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")
        self.tps = tps
        self.tau = float(tau)
        self.structure = DynamicDurableStructure(tps, epsilon, backend)

    def events(self) -> Iterator[StreamEvent]:
        """Yield the full event stream in time order."""
        tps, tau = self.tps, self.tau
        sched: List[Tuple[float, int, Tuple[float, int], int]] = []
        for p in range(tps.n):
            if tps.duration(p) >= tau:
                # (time, phase 0=activate, anchor-order tiebreak, point)
                sched.append(
                    (float(tps.starts[p]) + tau, 0, tps.anchor_key(p), p)
                )
                sched.append((float(tps.ends[p]), 1, tps.anchor_key(p), p))
        sched.sort()
        for time, phase, _, p in sched:
            if phase == 0:
                recs = self.structure.insert(p)
                yield StreamEvent(time, "activate", p, tuple(recs))
            else:
                self.structure.delete(p)
                yield StreamEvent(time, "delete", p)

    def run(self) -> List[TriangleRecord]:
        """Replay everything and return all reported triangles."""
        out: List[TriangleRecord] = []
        for ev in self.events():
            out.extend(ev.triangles)
        return out
