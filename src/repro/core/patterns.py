"""Durable cliques, paths and stars — Appendix D.2.

All three extensions reuse the anchor discipline of Algorithm 1: a
pattern is reported exactly once, at the member ``p`` whose ``(I⁻, id)``
is lexicographically largest, and all other members must satisfy the
``durableBallQ`` temporal predicate with respect to ``p``.  They differ
in the spatial search radius around the anchor:

* cliques: radius 1 (every member is adjacent to ``p``);
* paths of ``m`` vertices: radius ``m − 1`` (members can be ``m − 1``
  hops away — the paper's sketch reuses ``C_p`` and would miss the far
  end of a path, so we widen the ball query; DESIGN.md);
* stars: radius 2, as in the paper (``p`` may be a leaf whose center is
  another point).

Adjacency between members is decided at the canonical-ball level
(``φ(Rep_i, Rep_j) ≤ 1 + r_i + r_j``), giving the usual sandwich
guarantee: every exact τ-durable pattern is reported, every report is a
τ-durable ε-pattern.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Sequence, Set, Tuple

import numpy as np

from ..errors import ValidationError
from ..structures.durable_ball import DurableBallStructure, resolve_backend
from ..temporal.interval import Interval
from ..types import PatternRecord, TemporalPointSet

__all__ = [
    "PatternIndex",
    "find_durable_cliques",
    "find_durable_paths",
    "find_durable_stars",
]


class PatternIndex:
    """Shared machinery for the Appendix D pattern reporters."""

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
        self.tps = tps
        self.epsilon = float(epsilon)
        self.backend = resolve_backend(backend)
        self.structure = DurableBallStructure(tps, epsilon / 4.0, backend)

    def cache_key(self) -> tuple:
        """Engine-cache identity; one PatternIndex serves cliques, paths
        and stars alike, so the key carries no pattern kind."""
        return ("patterns", self.tps.fingerprint(), self.epsilon, self.backend)

    # ------------------------------------------------------------------
    def _anchor_context(
        self, anchor: int, tau: float, radius: float
    ) -> Tuple[List[int], Dict[int, int], List[object]]:
        """Candidates around an anchor plus their ball assignments.

        Returns ``(candidate_ids, ball_of, groups)`` where ``ball_of``
        maps a candidate id to its index into ``groups``.
        """
        subsets = self.structure.query(anchor, tau, radius=radius)
        candidates: List[int] = []
        ball_of: Dict[int, int] = {}
        groups: List[object] = []
        for s in subsets:
            gi = len(groups)
            groups.append(s.group)
            for pid in s.ids():
                candidates.append(pid)
                ball_of[pid] = gi
        # The anchor participates too; track its own ball.
        own = self.structure.groups[self.structure.group_index_of(anchor)]
        ball_of[anchor] = len(groups)
        groups.append(own)
        return candidates, ball_of, groups

    def _link_table(self, groups: Sequence[object]) -> List[List[bool]]:
        k = len(groups)
        table = [[False] * k for _ in range(k)]
        for i in range(k):
            table[i][i] = True
            for j in range(i + 1, k):
                linked = self.structure.linked(groups[i], groups[j])  # type: ignore[arg-type]
                table[i][j] = table[j][i] = linked
        return table

    def _lifespan(self, members: Sequence[int]) -> Interval:
        return self.tps.pattern_lifespan(members)

    def _eligible_anchors(self, tau: float) -> Iterator[int]:
        durations = self.tps.ends - self.tps.starts
        for p in np.nonzero(durations >= tau)[0]:
            yield int(p)

    @staticmethod
    def _check(m: int, tau: float) -> None:
        if m < 2:
            raise ValidationError(f"pattern size must be at least 2, got {m!r}")
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")

    # ------------------------------------------------------------------
    # Cliques
    # ------------------------------------------------------------------
    def iter_cliques(self, m: int, tau: float) -> Iterator[PatternRecord]:
        """τ-durable ``m``-cliques (plus some ε-cliques), each once."""
        self._check(m, tau)
        for p in self._eligible_anchors(tau):
            yield from self._cliques_for_anchor(p, m, tau)

    def _cliques_for_anchor(self, p: int, m: int, tau: float) -> Iterator[PatternRecord]:
        candidates, ball_of, groups = self._anchor_context(p, tau, radius=1.0)
        if len(candidates) < m - 1:
            return
        link = self._link_table(groups)
        p_ball = ball_of[p]
        by_ball: Dict[int, List[int]] = {}
        for c in candidates:
            by_ball.setdefault(ball_of[c], []).append(c)
        ball_ids = sorted(by_ball)
        # Choose a multiset of mutually-linked balls (all linked to p's
        # ball as well), then expand point combinations inside each.
        def recurse(idx: int, chosen: List[int], left: int) -> Iterator[List[int]]:
            if left == 0:
                yield list(chosen)
                return
            for pos in range(idx, len(ball_ids)):
                b = ball_ids[pos]
                if not link[b][p_ball]:
                    continue
                if any(not link[b][c] for c in chosen):
                    continue
                avail = len(by_ball[b])
                for take in range(1, min(avail, left) + 1):
                    chosen_b = chosen + [b] * take
                    # Recurse over strictly later balls.
                    for rest in recurse(pos + 1, chosen_b, left - take):
                        yield rest

        for multiset in recurse(0, [], m - 1):
            counts: Dict[int, int] = {}
            for b in multiset:
                counts[b] = counts.get(b, 0) + 1
            yield from self._expand_products(p, counts, by_ball, tau)

    def _expand_products(
        self,
        p: int,
        counts: Dict[int, int],
        by_ball: Dict[int, List[int]],
        tau: float,
    ) -> Iterator[PatternRecord]:
        balls = sorted(counts)
        choices: List[List[Tuple[int, ...]]] = [
            list(combinations(sorted(by_ball[b]), counts[b])) for b in balls
        ]

        def product(idx: int, acc: List[int]) -> Iterator[PatternRecord]:
            if idx == len(choices):
                members = tuple(sorted([p, *acc]))
                yield PatternRecord(
                    kind="clique", members=members, lifespan=self._lifespan(members)
                )
                return
            for combo in choices[idx]:
                yield from product(idx + 1, acc + list(combo))

        yield from product(0, [])

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def iter_paths(self, m: int, tau: float) -> Iterator[PatternRecord]:
        """τ-durable ``m``-vertex paths (plus some ε-paths).

        Reported once per undirected path, oriented so the first
        endpoint has the smaller id.
        """
        self._check(m, tau)
        for p in self._eligible_anchors(tau):
            yield from self._paths_for_anchor(p, m, tau)

    def _paths_for_anchor(self, p: int, m: int, tau: float) -> Iterator[PatternRecord]:
        radius = float(m - 1)
        candidates, ball_of, groups = self._anchor_context(p, tau, radius=radius)
        nodes = candidates + [p]
        if len(nodes) < m:
            return
        link = self._link_table(groups)

        def admissible(a: int, b: int) -> bool:
            return link[ball_of[a]][ball_of[b]]

        def dfs(path: List[int], used: Set[int]) -> Iterator[PatternRecord]:
            if len(path) == m:
                if p in used and path[0] < path[-1]:
                    members = tuple(path)
                    yield PatternRecord(
                        kind="path", members=members, lifespan=self._lifespan(members)
                    )
                return
            # Prune: p must still be reachable into the path.
            if p not in used and len(path) + (m - len(path)) < m:
                return
            for nxt in nodes:
                if nxt in used or not admissible(path[-1], nxt):
                    continue
                if p not in used and len(path) + 1 == m and nxt != p:
                    continue
                path.append(nxt)
                used.add(nxt)
                yield from dfs(path, used)
                path.pop()
                used.remove(nxt)

        for start in nodes:
            yield from dfs([start], {start})

    # ------------------------------------------------------------------
    # Stars
    # ------------------------------------------------------------------
    def iter_stars(self, m: int, tau: float) -> Iterator[PatternRecord]:
        """τ-durable ``m``-stars (center + ``m−1`` leaves), each once.

        The anchor may be the center or any leaf; the search ball has
        radius 2 as in Appendix D.2.
        """
        self._check(m, tau)
        for p in self._eligible_anchors(tau):
            yield from self._stars_for_anchor(p, m, tau)

    def star_summaries(self, m: int, tau: float) -> List[Tuple[int, List[int]]]:
        """Compact star reporting: ``(center, leaf candidates)`` pairs.

        The implicit form matching the paper's description — the full
        enumeration is the Cartesian expansion done by
        :meth:`iter_stars`.
        """
        self._check(m, tau)
        out: List[Tuple[int, List[int]]] = []
        for p in self._eligible_anchors(tau):
            for center, leaves, need in self._star_contexts(p, m, tau):
                if len(leaves) >= need:
                    out.append((center, sorted(leaves)))
        return out

    def _star_contexts(
        self, p: int, m: int, tau: float
    ) -> Iterator[Tuple[int, List[int], int]]:
        candidates, ball_of, groups = self._anchor_context(p, tau, radius=2.0)
        nodes = candidates + [p]
        if len(nodes) < m:
            return
        link = self._link_table(groups)
        for center in nodes:
            cb = ball_of[center]
            leaves = [x for x in nodes if x != center and link[cb][ball_of[x]]]
            if center == p:
                yield center, leaves, m - 1
            elif p in leaves:
                yield center, leaves, m - 1
        return

    def _stars_for_anchor(self, p: int, m: int, tau: float) -> Iterator[PatternRecord]:
        for center, leaves, need in self._star_contexts(p, m, tau):
            if center == p:
                pool = sorted(leaves)
                for combo in combinations(pool, m - 1):
                    members = (center, *combo)
                    yield PatternRecord(
                        kind="star", members=members, lifespan=self._lifespan(members)
                    )
            else:
                pool = sorted(x for x in leaves if x != p)
                for combo in combinations(pool, m - 2):
                    members = (center, *tuple(sorted([p, *combo])))
                    yield PatternRecord(
                        kind="star", members=members, lifespan=self._lifespan(members)
                    )


def find_durable_cliques(
    tps: TemporalPointSet,
    m: int,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PatternRecord]:
    """All τ-durable ``m``-cliques (plus some τ-durable ε-cliques)."""
    return list(PatternIndex(tps, epsilon, backend).iter_cliques(m, tau))


def find_durable_paths(
    tps: TemporalPointSet,
    m: int,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PatternRecord]:
    """All τ-durable ``m``-vertex paths (plus some τ-durable ε-paths)."""
    return list(PatternIndex(tps, epsilon, backend).iter_paths(m, tau))


def find_durable_stars(
    tps: TemporalPointSet,
    m: int,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PatternRecord]:
    """All τ-durable ``m``-stars (plus some τ-durable ε-stars)."""
    return list(PatternIndex(tps, epsilon, backend).iter_stars(m, tau))
