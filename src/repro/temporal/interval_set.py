"""Disjoint unions of intervals (multi-interval lifespans).

Footnote 1 of the paper notes that the temporal model extends to
lifespans made of multiple intervals, at the cost of a factor equal to
the maximum number of intervals per lifespan.  :class:`IntervalSet` is
the reference implementation of that extension: a normalised (sorted,
disjoint, non-degenerate-merged) union of closed intervals supporting
the measure/intersection/union algebra the durability definitions need.

The indexed algorithms use single intervals; the brute-force baselines
and the multi-interval helpers in :mod:`repro.baselines` consume this
type directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import ValidationError
from .interval import Interval

__all__ = ["IntervalSet"]


def _normalise(spans: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    ordered = sorted((float(a), float(b)) for a, b in spans)
    merged: List[Tuple[float, float]] = []
    for lo, hi in ordered:
        if hi < lo:
            raise ValidationError(f"interval end ({hi!r}) precedes start ({lo!r})")
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


class IntervalSet:
    """An immutable, normalised union of closed intervals.

    Supports the operations used by durability semantics:

    * ``measure`` — ``|I|`` = total length of the union (Section 1.1);
    * ``intersect`` — pointwise intersection with another set or interval;
    * ``union`` — pointwise union;
    * ``max_window`` — the longest contiguous piece (the alternative
      "durable within a single window" semantics discussed in DESIGN.md).
    """

    __slots__ = ("_spans",)

    def __init__(self, spans: Iterable[Tuple[float, float]] = ()) -> None:
        object.__setattr__(self, "_spans", tuple(_normalise(spans)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_intervals(intervals: Iterable[Interval]) -> "IntervalSet":
        """Build from :class:`Interval` objects (empty ones are dropped)."""
        return IntervalSet(
            (iv.start, iv.end) for iv in intervals if not iv.is_empty
        )

    @staticmethod
    def single(start: float, end: float) -> "IntervalSet":
        """A set holding one interval ``[start, end]``."""
        return IntervalSet([(start, end)])

    @staticmethod
    def empty() -> "IntervalSet":
        """The empty set."""
        return IntervalSet()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Tuple[float, float], ...]:
        """The normalised (sorted, disjoint) component intervals."""
        return self._spans

    @property
    def is_empty(self) -> bool:
        return not self._spans

    @property
    def measure(self) -> float:
        """Total length of the union — the paper's ``|I|`` for interval sets."""
        return sum(hi - lo for lo, hi in self._spans)

    @property
    def max_window(self) -> float:
        """Length of the longest contiguous component (0 when empty)."""
        if not self._spans:
            return 0.0
        return max(hi - lo for lo, hi in self._spans)

    def intervals(self) -> Iterator[Interval]:
        """Iterate components as :class:`Interval` objects."""
        for lo, hi in self._spans:
            yield Interval(lo, hi)

    def contains_point(self, t: float) -> bool:
        """True when ``t`` lies in some component (binary search)."""
        import bisect

        idx = bisect.bisect_right(self._spans, (t, float("inf"))) - 1
        return idx >= 0 and self._spans[idx][0] <= t <= self._spans[idx][1]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Pointwise intersection (linear two-pointer merge)."""
        if isinstance(other, Interval):
            if other.is_empty:
                return IntervalSet.empty()
            other = IntervalSet.single(other.start, other.end)
        out: List[Tuple[float, float]] = []
        a, b = self._spans, other._spans
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Pointwise union."""
        if isinstance(other, Interval):
            if other.is_empty:
                return self
            other = IntervalSet.single(other.start, other.end)
        return IntervalSet(list(self._spans) + list(other._spans))

    def subtract(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Pointwise set difference ``self \\ other``."""
        if isinstance(other, Interval):
            if other.is_empty:
                return self
            other = IntervalSet.single(other.start, other.end)
        out: List[Tuple[float, float]] = []
        blockers: Sequence[Tuple[float, float]] = other._spans
        for lo, hi in self._spans:
            cur = lo
            for b_lo, b_hi in blockers:
                if b_hi <= cur:
                    continue
                if b_lo >= hi:
                    break
                if b_lo > cur:
                    out.append((cur, b_lo))
                cur = max(cur, b_hi)
                if cur >= hi:
                    break
            if cur < hi:
                out.append((cur, hi))
        return IntervalSet(out)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self._spans == other._spans

    def __hash__(self) -> int:
        return hash(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"[{lo:g},{hi:g}]" for lo, hi in self._spans)
        return f"IntervalSet({body})"
