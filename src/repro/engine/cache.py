"""Shared-index cache: build every distinct index exactly once.

The cache maps an :class:`IndexKey` — ``(family, dataset fingerprint,
ε, backend, extras)`` — to a built index object.  It is safe under the
engine's thread pool: concurrent requests for the same key block on a
per-key event while the first requester builds, so a batch of queries
that can share preprocessing performs exactly one build (asserted by
the engine tests and by the acceptance criterion of ISSUE 1).

Eviction is LRU when ``max_entries`` is set; the default cache is
unbounded, which matches the bench harness's historical ``lru_cache``
behaviour.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, NamedTuple, Optional, Tuple

__all__ = ["IndexKey", "CacheOutcome", "CacheStats", "IndexCache"]


class IndexKey(NamedTuple):
    """Identity of a shareable index.

    Mirrors the ``cache_key()`` hooks on the core index classes
    (:meth:`repro.core.triangles.DurableTriangleIndex.cache_key` and
    friends): equal keys guarantee interchangeable indexes.
    """

    family: str
    fingerprint: str
    epsilon: float
    backend: str
    extra: Tuple[Any, ...] = ()


class CacheOutcome(NamedTuple):
    """What :meth:`IndexCache.get_or_build` hands back for one request.

    ``build_seconds`` is the wall time of the flight that produced
    ``index`` — carried on the outcome itself so callers never have to
    look the entry up again (it may already be LRU-evicted by then).

    ``source`` distinguishes the three ways a request can resolve:
    ``"hit"`` (entry was ready), ``"build"`` (this request owned the
    single-flight build), ``"wait"`` (joined someone else's in-flight
    build).  ``hit`` stays the two-way summary — waiters count as hits,
    as they always have — so existing callers are unaffected.
    """

    index: Any
    hit: bool
    build_seconds: float
    source: str = "hit"


@dataclass
class CacheStats:
    """Mutable hit/miss accounting for one cache instance.

    ``failed_waits`` counts requests that joined an in-flight build
    which subsequently failed: they are neither hits (no index was
    served) nor misses (they triggered no build of their own).
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    evictions: int = 0
    failed_waits: int = 0
    migrated: int = 0
    invalidated: int = 0
    build_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.failed_waits

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without building (0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "evictions": self.evictions,
            "failed_waits": self.failed_waits,
            "migrated": self.migrated,
            "invalidated": self.invalidated,
            "build_seconds": self.build_seconds,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            builds=self.builds,
            evictions=self.evictions,
            failed_waits=self.failed_waits,
            migrated=self.migrated,
            invalidated=self.invalidated,
            build_seconds=self.build_seconds,
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Activity between an earlier snapshot and now (per-batch stats)."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            builds=self.builds - earlier.builds,
            evictions=self.evictions - earlier.evictions,
            failed_waits=self.failed_waits - earlier.failed_waits,
            migrated=self.migrated - earlier.migrated,
            invalidated=self.invalidated - earlier.invalidated,
            build_seconds=self.build_seconds - earlier.build_seconds,
        )


@dataclass
class _Entry:
    """One cache slot; ``ready`` gates readers while the owner builds."""

    ready: threading.Event = field(default_factory=threading.Event)
    index: Any = None
    error: Optional[BaseException] = None
    build_seconds: float = 0.0


def _waiter_copy(exc: BaseException) -> BaseException:
    """A fresh exception for one waiter of a failed flight.

    Re-raising the owner's instance from several threads makes them all
    race to mutate its ``__traceback__``, splicing unrelated stacks into
    each other's reports.  Each waiter therefore raises its own shallow
    copy, chained (``__cause__``) to the original so the build-site
    traceback is still printed once, unmangled.
    """
    try:
        clone = copy.copy(exc)
        # A copy that is the same object (e.g. an exception overriding
        # __copy__ to return self) would reintroduce the shared-instance
        # race; fall through to the wrapper in that case.
        if clone is exc:
            raise TypeError("copy returned the original instance")
    except Exception:
        clone = RuntimeError(f"index build failed: {type(exc).__name__}: {exc}")
    clone.__cause__ = exc
    clone.__traceback__ = None
    return clone


class IndexCache:
    """Thread-safe index cache with single-flight builds.

    Parameters
    ----------
    max_entries:
        LRU bound on resident indexes; ``None`` (default) keeps
        everything.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[IndexKey, _Entry]" = OrderedDict()
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    def get_or_build(
        self, key: IndexKey, builder: Callable[[], Any]
    ) -> CacheOutcome:
        """Return a :class:`CacheOutcome`, building at most once per key.

        A failed build is not cached: the next request retries.  The
        owner of the failed flight re-raises the original exception;
        every waiter that joined the flight raises its own chained copy
        (see :func:`_waiter_copy`) and is counted under
        ``stats.failed_waits`` rather than as a hit.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if entry.ready.is_set():
                    # Completed entries in the table are always successes
                    # (failed flights are dropped before ready is set).
                    self._stats.hits += 1
                    return CacheOutcome(
                        entry.index, True, entry.build_seconds, "hit"
                    )
                # In-flight: whether this is a hit isn't known until the
                # build resolves — account for it after the wait.
                owner = False
            else:
                entry = _Entry()
                self._entries[key] = entry
                self._stats.misses += 1
                owner = True

        if owner:
            t0 = time.perf_counter()
            try:
                entry.index = builder()
            except BaseException as exc:  # noqa: BLE001 - re-raised to waiters
                entry.error = exc
                with self._lock:
                    # Drop the poisoned slot so a later call can retry.
                    if self._entries.get(key) is entry:
                        del self._entries[key]
                entry.ready.set()
                raise
            entry.build_seconds = time.perf_counter() - t0
            with self._lock:
                self._stats.builds += 1
                self._stats.build_seconds += entry.build_seconds
                self._evict_locked()
            entry.ready.set()
            return CacheOutcome(entry.index, False, entry.build_seconds, "build")

        entry.ready.wait()
        if entry.error is not None:
            with self._lock:
                self._stats.failed_waits += 1
            raise _waiter_copy(entry.error)
        with self._lock:
            self._stats.hits += 1
        return CacheOutcome(entry.index, True, entry.build_seconds, "wait")

    def _evict_locked(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            # Oldest *completed* entry; in-flight builds are never evicted
            # (their waiters would otherwise re-trigger a duplicate build).
            victim = next(
                (k for k, e in self._entries.items() if e.ready.is_set()), None
            )
            if victim is None:
                return
            del self._entries[victim]
            self._stats.evictions += 1

    # ------------------------------------------------------------------
    def advance(
        self,
        old_fingerprint: str,
        new_fingerprint: str,
        maintainer: Optional[Callable[[IndexKey, Any], Optional[Any]]] = None,
    ) -> Dict[str, list]:
        """Carry the cache across a dataset epoch bump.

        Every *completed* entry keyed on ``old_fingerprint`` is offered
        to ``maintainer(key, index)``: a non-``None`` return value is
        re-keyed under ``new_fingerprint`` as a ready entry (the family
        keeps hitting), while ``None`` — or no maintainer at all —
        invalidates the entry, so that family's next request misses and
        rebuilds exactly once through the normal single-flight path.

        In-flight builds are deliberately left untouched under their
        old key: their waiters planned against the old epoch and must
        receive the old-epoch index, and a query planned after the bump
        carries ``new_fingerprint`` in its key, so it can never join an
        old-epoch flight or be handed a pre-append index.

        Returns ``{"migrated": [new keys], "invalidated": [old keys]}``.
        """
        if old_fingerprint == new_fingerprint:
            raise ValueError("advance() requires distinct fingerprints")
        with self._lock:
            stale = [
                (key, entry)
                for key, entry in self._entries.items()
                if key.fingerprint == old_fingerprint and entry.ready.is_set()
            ]
        migrated: list = []
        invalidated: list = []
        for key, entry in stale:
            # Maintenance may rebuild structures — run it outside the
            # lock; old-epoch readers keep hitting the old entry until
            # the swap below.  Maintainers return fresh objects (never
            # mutate ``entry.index`` in place) for exactly that reason.
            kept = maintainer(key, entry.index) if maintainer is not None else None
            new_key = key._replace(fingerprint=new_fingerprint)
            with self._lock:
                if self._entries.get(key) is entry:
                    del self._entries[key]
                else:
                    continue  # evicted or replaced mid-maintenance
                if kept is None or new_key in self._entries:
                    # No maintenance, or a racing build already owns the
                    # new-epoch slot (the single-flight winner stands).
                    self._stats.invalidated += 1
                    invalidated.append(key)
                    continue
                slot = _Entry(index=kept, build_seconds=entry.build_seconds)
                slot.ready.set()
                self._entries[new_key] = slot
                self._stats.migrated += 1
                migrated.append(new_key)
        return {"migrated": migrated, "invalidated": invalidated}

    def peek(self, key: IndexKey) -> Optional[Any]:
        """The cached index for ``key`` without counting a request."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None or not entry.ready.is_set():
            return None
        return entry.index

    def build_seconds_for(self, key: IndexKey) -> float:
        """Build wall-time of the cached index for ``key`` (0 if absent)."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None or not entry.ready.is_set():
            return 0.0
        return entry.build_seconds

    def clear(self) -> None:
        """Drop every cached index (stats are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """Live stats object (use :meth:`CacheStats.snapshot` to freeze)."""
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: IndexKey) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.ready.is_set()
