"""Geometric substrates: metrics, grids, diagnostics, embeddings."""

from .metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    FunctionMetric,
    LpMetric,
    ManhattanMetric,
    Metric,
    MetricSpec,
    get_metric,
)
from .grid import UniformGrid
from .analysis import (
    doubling_dimension_estimate,
    expansion_constant_estimate,
    spread,
)

__all__ = [
    "ChebyshevMetric",
    "EuclideanMetric",
    "FunctionMetric",
    "LpMetric",
    "ManhattanMetric",
    "Metric",
    "MetricSpec",
    "get_metric",
    "UniformGrid",
    "doubling_dimension_estimate",
    "expansion_constant_estimate",
    "spread",
]
