#!/usr/bin/env python3
"""Closed-loop router benchmark → ``BENCH_router.json``.

Runs the **same** two-dataset sweep workload against three topologies:

1. **direct**  — one ``repro serve`` process hosting both datasets
   (the PR-2/3 baseline: every solver thread shares one GIL);
2. **router1** — the routing tier with a single worker process
   (measures pure proxy overhead: same parallelism as direct, one
   extra loopback hop per request);
3. **router2** — the routing tier with two workers, one dataset placed
   on each (the horizontal-scaling configuration the tier exists for).

Each topology gets a warmup pass (every index the load phase needs is
built once — the steady-state regime the paper's preprocess-once
economics predict), then a closed loop of ``--clients`` threads per
dataset × ``--requests`` streamed batches over pooled keep-alive
connections.  The dataset names are chosen so rendezvous placement
puts them on *different* workers in the 2-worker topology (asserted,
not assumed).

Gates (non-zero exit on failure):

* ``router2 ≥ --min-speedup × direct`` aggregate throughput (default
  1.5×).  This is a *parallel-scaling* assertion — two worker
  processes beat one GIL — so it needs at least 2 usable CPUs; on a
  single-CPU host the gate is recorded as skipped (physically
  impossible to pass: N processes cannot beat one on one core) and the
  numbers are still reported.
* ``router1 ≥ --max-proxy-overhead`` fraction of direct throughput
  (default 0.5): the hop must stay bounded, on any machine.

Server-side facts come from **/metrics diffs** (scraped before/after
each load phase): the direct topology cross-checks the client's
request count against ``http_requests_total`` and reports engine
latency from the ``serve_query_seconds`` interval histogram; the
router topologies check ``router_proxied_queries_total`` against the
client count, report relay bytes and upstream keep-alive reuse, and —
in the 2-worker case — prove via the worker-labelled
``serve_queries_total`` re-export that *both* workers actually served
load (the horizontal-scaling claim, read back from the fleet scrape).

Usage::

    python benchmarks/bench_router.py [--n 280] [--clients 3] [--requests 6]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_serve import (  # noqa: E402
    Client,
    _interval_latency_ms,
    _latency_ms,
    scrape_metrics,
)

from repro.obs import counter_value  # noqa: E402
from repro.router import start_router_thread  # noqa: E402
from repro.serve import start_server_thread  # noqa: E402

#: Chosen to rendezvous-hash onto distinct slots of a homogeneous
#: 2-worker fleet (deterministic, so this cannot rot); the bench
#: asserts the split rather than trusting the comment.
DATASETS = {
    "social": {"workload": "social", "seed": 7},
    "coauthor": {"workload": "coauthor", "seed": 3},
}

#: One CPU-heavy mixed batch per request: τ-sweeps dominate, which is
#: the cache-hit serving regime where worker CPU is the bottleneck.
QUERIES = {
    "social": [
        {"kind": "triangles", "taus": [1.5, 2.0, 3.0], "label": "sweep"},
        {"kind": "pairs-sum", "tau": 2.0},
        {"kind": "cliques", "tau": 2.0, "m": 3},
    ],
    "coauthor": [
        {"kind": "triangles", "taus": [15.0, 20.0, 25.0], "label": "sweep"},
        {"kind": "pairs-union", "tau": 15.0, "kappa": 2},
    ],
}


def _query_once(client, dataset):
    t0 = time.perf_counter()
    status, data = client.request(
        "POST",
        "/query",
        {"dataset": dataset, "queries": QUERIES[dataset], "include_records": False},
    )
    latency = time.perf_counter() - t0
    if status != 200:
        return status, latency, None
    last = json.loads(data.decode().strip().rsplit("\n", 1)[-1])
    return status, latency, last


def run_load(host, port, clients, requests):
    """Closed loop over both datasets; returns throughput + latency."""
    latencies = {name: [] for name in DATASETS}
    errors = {name: 0 for name in DATASETS}
    lock = threading.Lock()

    def worker(name):
        client = Client(host, port, pooled=True)
        try:
            for _ in range(requests):
                status, latency, end = _query_once(client, name)
                with lock:
                    if status == 200 and end is not None and end.get("ok"):
                        latencies[name].append(latency)
                    else:
                        errors[name] += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(name,))
        for name in DATASETS
        for _ in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    all_latencies = [v for values in latencies.values() for v in values]
    return {
        "requests": len(all_latencies),
        "errors": dict(errors),
        "wall_seconds": wall,
        "throughput_rps": len(all_latencies) / wall if wall else 0.0,
        "latency_ms": _latency_ms(all_latencies),
    }


def _scrape(host, port):
    """One strict /metrics scrape over a throwaway connection."""
    client = Client(host, port, pooled=False)
    try:
        return scrape_metrics(client)
    finally:
        client.close()


def _counter_diff(before, after, name, labels=None):
    return counter_value(after, name, labels) - counter_value(
        before, name, labels
    )


def _per_worker_queries(before, after):
    """Engine queries served per worker, from the fleet scrape's
    worker-labelled ``serve_queries_total`` re-export."""

    def by_worker(families):
        out = {}
        family = families.get("serve_queries_total")
        if family is not None:
            for sample in family.samples:
                worker = dict(sample.labels).get("worker", "")
                out[worker] = out.get(worker, 0.0) + sample.value
        return out

    b, a = by_worker(before), by_worker(after)
    return {worker: a[worker] - b.get(worker, 0.0) for worker in sorted(a)}


def _register_and_warm(host, port, n, failures, label):
    client = Client(host, port, pooled=True)
    try:
        for name, spec in DATASETS.items():
            status, data = client.request(
                "POST", "/datasets",
                {"name": name, "dataset": dict(spec, n=n)},
            )
            if status != 201:
                failures.append(f"{label}: register {name}: HTTP {status} {data!r}")
        for name in DATASETS:
            status, _latency, end = _query_once(client, name)
            if status != 200 or end is None or not end.get("ok"):
                failures.append(f"{label}: warmup {name}: HTTP {status}, end={end}")
    finally:
        client.close()


def bench_direct(args, failures):
    handle = start_server_thread(queue_limit=args.queue_limit)
    try:
        _register_and_warm(handle.host, handle.port, args.n, failures, "direct")
        before = _scrape(handle.host, handle.port)
        result = run_load(handle.host, handle.port, args.clients, args.requests)
        after = _scrape(handle.host, handle.port)
        served = _counter_diff(
            before, after, "http_requests_total",
            {"route": "/query", "status": "200"},
        )
        if served != result["requests"]:
            failures.append(
                f"direct: metrics counted {served:g} /query 200s, clients "
                f"made {result['requests']}"
            )
        result["metrics"] = {
            "served_200": served,
            "query_latency_ms": _interval_latency_ms(
                before, after, "serve_query_seconds"
            ),
        }
        return result
    finally:
        handle.stop()


def bench_router(args, workers, failures):
    label = f"router{workers}"
    handle = start_router_thread(
        workers=workers,
        serve_args=["--queue-limit", str(args.queue_limit)],
    )
    try:
        _register_and_warm(handle.host, handle.port, args.n, failures, label)
        before = _scrape(handle.host, handle.port)
        result = run_load(handle.host, handle.port, args.clients, args.requests)
        after = _scrape(handle.host, handle.port)
        client = Client(handle.host, handle.port, pooled=True)
        try:
            _status, data = client.request("GET", "/stats")
            stats = json.loads(data)
        finally:
            client.close()
        placements = stats["router"]["placement"]["datasets"]
        result["placements"] = placements
        if workers == 2 and len(set(placements.values())) != 2:
            failures.append(
                f"{label}: datasets did not land on distinct workers: {placements}"
            )
        # Fleet-scrape facts.  The fleet exposition mixes router-own and
        # worker-labelled families, so the router's side of the story
        # comes from router-only families and the workers' from the
        # worker-only serve_* re-exports.
        proxied = _counter_diff(before, after, "router_proxied_queries_total")
        if proxied != result["requests"]:
            failures.append(
                f"{label}: metrics counted {proxied:g} proxied query "
                f"streams, clients made {result['requests']}"
            )
        per_worker = _per_worker_queries(before, after)
        if workers == 2 and sum(1 for v in per_worker.values() if v > 0) != 2:
            failures.append(
                f"{label}: fleet scrape shows load on "
                f"{per_worker} — expected both workers active"
            )
        result["metrics"] = {
            "proxied_queries": proxied,
            "relay_bytes": _counter_diff(
                before, after, "router_relay_bytes_total"
            ),
            "upstream_reuses": _counter_diff(
                before, after, "router_upstream_reuses_total"
            ),
            "worker_queries": per_worker,
            "query_latency_ms": _interval_latency_ms(
                before, after, "serve_query_seconds"
            ),
        }
        return result
    finally:
        handle.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=280, help="points per dataset")
    parser.add_argument("--clients", type=int, default=3,
                        help="closed-loop workers per dataset")
    parser.add_argument("--requests", type=int, default=6,
                        help="requests per worker per topology")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="per-shard admission bound")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required router2/direct throughput ratio "
                             "(needs >= 2 CPUs; skipped on 1)")
    parser.add_argument("--max-proxy-overhead", type=float, default=0.5,
                        help="required router1/direct throughput floor")
    parser.add_argument("--out", default="BENCH_router.json")
    args = parser.parse_args(argv)
    if args.n < 10 or args.clients < 1 or args.requests < 1:
        parser.error("--n must be >= 10, --clients and --requests >= 1")

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    failures = []

    print(f"direct serve: 2 datasets, {args.clients} clients each …")
    direct = bench_direct(args, failures)
    print("router, 1 worker (proxy overhead) …")
    router1 = bench_router(args, 1, failures)
    print("router, 2 workers (horizontal scaling) …")
    router2 = bench_router(args, 2, failures)

    for label, phase in (("direct", direct), ("router1", router1),
                         ("router2", router2)):
        if any(phase["errors"].values()):
            failures.append(f"{label}: load errors {phase['errors']}")

    speedup = (
        router2["throughput_rps"] / direct["throughput_rps"]
        if direct["throughput_rps"] else 0.0
    )
    proxy_ratio = (
        router1["throughput_rps"] / direct["throughput_rps"]
        if direct["throughput_rps"] else 0.0
    )
    speedup_gate_skipped = cpus < 2
    if speedup_gate_skipped:
        print(
            f"NOTE: {cpus} usable CPU(s) — the {args.min_speedup:.1f}x "
            "scaling gate needs >= 2 (N processes cannot out-run one "
            "process on one core); recording the ratio without gating"
        )
    elif speedup < args.min_speedup:
        failures.append(
            f"2-worker router speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x over direct serve"
        )
    if proxy_ratio < args.max_proxy_overhead:
        failures.append(
            f"1-worker router throughput is {proxy_ratio:.2f}x direct — "
            f"proxy overhead exceeds the {args.max_proxy_overhead:.2f}x floor"
        )

    payload = {
        "bench": "router",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": cpus,
        "config": {
            "n": args.n,
            "clients_per_dataset": args.clients,
            "requests_per_client": args.requests,
            "queue_limit": args.queue_limit,
            "min_speedup": args.min_speedup,
            "max_proxy_overhead": args.max_proxy_overhead,
        },
        "scenarios": {
            "direct": direct,
            "router1": router1,
            "router2": router2,
        },
        "speedup_2workers_vs_direct": speedup,
        "proxy_throughput_ratio_1worker": proxy_ratio,
        "speedup_gate": {
            "required": args.min_speedup,
            "skipped_single_cpu": speedup_gate_skipped,
            "passed": (not speedup_gate_skipped) and speedup >= args.min_speedup,
        },
        "failures": failures,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)

    for label, phase in (("direct", direct), ("router1", router1),
                         ("router2", router2)):
        lat = phase["latency_ms"]
        print(
            f"{label:8s} {phase['requests']:4d} req  "
            f"{phase['throughput_rps']:6.1f} req/s  "
            f"p50 {lat['p50']:6.1f} ms  p99 {lat['p99']:6.1f} ms"
        )
    print(
        f"router bench: 2-worker speedup {speedup:.2f}x"
        f"{' (gate skipped: 1 cpu)' if speedup_gate_skipped else ''}, "
        f"1-worker proxy ratio {proxy_ratio:.2f}x -> {args.out}"
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
