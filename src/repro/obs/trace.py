"""In-process span recording with W3C-``traceparent``-style propagation.

One request produces one *trace*: a tree of :class:`Span` records whose
root lives in the process that first saw the request (the router, or a
worker hit directly) and whose subtrees live wherever the work actually
ran.  The pieces:

* :class:`Span` — one timed operation.  ``start`` is wall-clock seconds
  (comparable across processes on one host, which is what lets the
  router stitch its proxy spans to the owning worker's spans into a
  single waterfall); durations are measured with ``perf_counter`` so
  they do not jump with clock adjustments.
* :class:`TraceContext` + :func:`format_traceparent` /
  :func:`parse_traceparent` — the propagation header, structured like
  W3C trace-context (``00-<32 hex trace>-<16 hex span>-<2 hex flags>``).
  The router forwards it on the upstream socket exactly like
  ``X-API-Key``; a worker that receives one continues the trace instead
  of opening a new one.
* :class:`TraceRecorder` — the per-request collector.  It is passed
  *explicitly* through every layer (including into the engine's thread
  pool via :class:`ExecTrace`): ``contextvars`` do not flow into
  ``loop.run_in_executor`` workers, and an explicit handle makes
  cross-request leakage structurally impossible rather than merely
  unlikely.

Everything is stdlib-only, matching the rest of the obs package.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "Span",
    "SpanHandle",
    "TraceContext",
    "TraceRecorder",
    "ExecTrace",
    "TRACEPARENT_HEADER",
    "new_trace_id",
    "new_span_id",
    "format_traceparent",
    "parse_traceparent",
    "span_tree",
    "format_waterfall",
]

#: Header name carrying the trace context between tiers.
TRACEPARENT_HEADER = "traceparent"

_VERSION = "00"
_SAMPLED_FLAG = "01"


def new_trace_id() -> str:
    """128-bit random trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """64-bit random span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Parsed propagation header: which trace, and which parent span."""

    trace_id: str
    span_id: str
    sampled: bool = True


def format_traceparent(trace_id: str, span_id: str, sampled: bool = True) -> str:
    """Render the propagation header for an upstream request."""
    flags = _SAMPLED_FLAG if sampled else "00"
    return f"{_VERSION}-{trace_id}-{span_id}-{flags}"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse an incoming header; ``None`` for absent or malformed values.

    Malformed headers are dropped rather than rejected — a bad tracing
    header must never fail a request, it just starts a fresh trace.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    if len(flags) != 2:
        return None
    try:
        int(version, 16)
        int(trace_id, 16)
        int(span_id, 16)
        flag_bits = int(flags, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id,
                        sampled=bool(flag_bits & 1))


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float  # wall-clock seconds (time.time) at span start
    duration: float = 0.0  # seconds, measured via perf_counter deltas
    status: str = "ok"  # "ok" | "error"
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": round(self.duration * 1000.0, 3),
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            parent_id=doc.get("parent_id"),
            name=doc["name"],
            start=float(doc.get("start", 0.0)),
            duration=float(doc.get("duration_ms", 0.0)) / 1000.0,
            status=doc.get("status", "ok"),
            attrs=dict(doc.get("attrs") or {}),
        )


class SpanHandle:
    """Live span being timed; context manager that records on exit.

    Usable from both asyncio code and thread-pool workers — finishing
    appends to the recorder under its lock.
    """

    __slots__ = ("span", "_recorder", "_t0", "_finished")

    def __init__(self, recorder: "TraceRecorder", span: Span) -> None:
        self.span = span
        self._recorder = recorder
        self._t0 = time.perf_counter()
        self._finished = False

    @property
    def span_id(self) -> str:
        return self.span.span_id

    @property
    def trace_id(self) -> str:
        return self.span.trace_id

    def set_attr(self, key: str, value: Any) -> None:
        self.span.attrs[key] = value

    def set_error(self, message: str) -> None:
        self.span.status = "error"
        if message:
            self.span.attrs.setdefault("error", message)

    def finish(self, status: Optional[str] = None) -> Span:
        """Record the span (idempotent); returns the finished span."""
        if not self._finished:
            self._finished = True
            self.span.duration = time.perf_counter() - self._t0
            if status is not None:
                self.span.status = status
            self._recorder.add(self.span)
        return self.span

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.span.status == "ok":
            self.set_error(f"{type(exc).__name__}: {exc}")
        self.finish()


class TraceRecorder:
    """Per-request span collector, safe to share across threads.

    Created once per HTTP request; every layer that wants to emit a
    span receives the recorder (plus a parent span id) explicitly.
    Spans land in insertion order; the tree structure lives in the
    ``parent_id`` links.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        #: span id of the remote parent (the caller tier's span), if
        #: this recorder continues a propagated context.
        self.remote_parent_id = parent_id
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def start_span(self, name: str, parent_id: Optional[str] = None,
                   attrs: Optional[Dict[str, Any]] = None,
                   start: Optional[float] = None) -> SpanHandle:
        """Open a live span; call ``finish()`` (or use ``with``) to record it."""
        span = Span(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            start=time.time() if start is None else start,
            attrs=dict(attrs) if attrs else {},
        )
        return SpanHandle(self, span)

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def add_timed(self, name: str, parent_id: Optional[str], start: float,
                  duration: float, status: str = "ok",
                  attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Record an already-measured interval as a span (e.g. queue wait)."""
        span = Span(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            duration=duration,
            status=status,
            attrs=dict(attrs) if attrs else {},
        )
        self.add(span)
        return span

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


@dataclass(frozen=True)
class ExecTrace:
    """Trace context handed into the engine's thread pool, explicitly.

    ``submitted_wall``/``submitted_perf`` mark the moment the plan was
    handed to the executor; the gap to execution start is the
    admission-queue/thread-pool wait span.
    """

    recorder: TraceRecorder
    parent_id: str
    index: int
    submitted_wall: float
    submitted_perf: float


# ----------------------------------------------------------------------
# Rendering (shared by `repro trace` and examples/serve_client.py)

def span_tree(spans: Sequence[Dict[str, Any]]):
    """Order span dicts as a depth-first tree: ``[(depth, span), ...]``.

    Spans whose parent is missing (e.g. the worker died before
    reporting, or the parent lived in an unreachable process) are
    treated as roots so partial traces still render.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None or parent not in by_id:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.get("start", 0.0))
    roots.sort(key=lambda s: s.get("start", 0.0))
    out: List = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        out.append((depth, span))
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return out

_BAR_WIDTH = 28


def format_waterfall(doc: Dict[str, Any]) -> str:
    """Render a trace document as an indented waterfall, one span per line."""
    spans = doc.get("spans") or []
    if not spans:
        return f"trace {doc.get('trace_id', '?')}: no spans"
    ordered = span_tree(spans)
    t0 = min(s.get("start", 0.0) for s in spans)
    t1 = max(s.get("start", 0.0) + s.get("duration_ms", 0.0) / 1000.0
             for s in spans)
    total = max(t1 - t0, 1e-9)
    lines = [f"trace {doc.get('trace_id', '?')}  "
             f"({len(spans)} spans, {total * 1000.0:.1f} ms)"]
    for depth, span in ordered:
        offset = span.get("start", 0.0) - t0
        dur_ms = float(span.get("duration_ms", 0.0))
        left = int(_BAR_WIDTH * offset / total)
        width = max(1, int(_BAR_WIDTH * (dur_ms / 1000.0) / total))
        left = min(left, _BAR_WIDTH - 1)
        width = min(width, _BAR_WIDTH - left)
        bar = " " * left + "#" * width + " " * (_BAR_WIDTH - left - width)
        status = span.get("status", "ok")
        mark = "" if status == "ok" else "  !" + status
        attrs = span.get("attrs") or {}
        detail_keys = ("route", "worker", "stage", "family", "backend",
                       "outcome", "query", "dataset", "template", "error")
        details = " ".join(f"{k}={attrs[k]}" for k in detail_keys
                           if k in attrs and attrs[k] not in (None, ""))
        name = "  " * depth + span.get("name", "?")
        lines.append(
            f"  [{bar}] {offset * 1000.0:8.1f}ms {dur_ms:8.1f}ms  "
            f"{name}{'  ' + details if details else ''}{mark}"
        )
    return "\n".join(lines)
