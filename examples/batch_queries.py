#!/usr/bin/env python3
"""Batched durable-pattern queries over one shared preprocessing pass.

The paper's algorithms are built so that one index answers many
queries; :class:`repro.QueryEngine` exposes that as a batch API.  This
example submits a mixed batch — a triangle τ-sweep, aggregate-durable
pairs, and cliques — then shows the cache accounting that proves each
distinct index was built exactly once, and finally round-trips the same
batch through the ``python -m repro batch`` wire format.

Run:  python examples/batch_queries.py
"""

import json
import tempfile

from repro import QueryEngine, QuerySpec
from repro.cli import main as repro_cli
from repro.datasets import social_forum_workload


def run_engine_batch() -> None:
    tps = social_forum_workload(n=300, seed=7)
    print(f"input: {tps}")

    engine = QueryEngine()
    batch = engine.run_batch(
        tps,
        [
            # Three thresholds answered from ONE triangle index.
            QuerySpec(kind="triangles", taus=(1.0, 2.0, 3.0), label="tri-sweep"),
            # Another τ on the same index: a pure cache hit.
            QuerySpec(kind="triangles", taus=2.5, label="tri-extra"),
            QuerySpec(kind="pairs-sum", taus=3.0, label="sum"),
            QuerySpec(kind="pairs-union", taus=3.0, kappa=3, label="union"),
            # Cliques and stars share one pattern index.
            QuerySpec(kind="cliques", taus=2.0, m=3, label="triads"),
            QuerySpec(kind="stars", taus=2.0, m=3, label="stars"),
        ],
    )

    assert batch.ok, [r.error for r in batch if not r.ok]

    print(f"\n{'label':>10} {'kind':>12} {'count':>6}  index")
    for result in batch:
        source = "cache hit" if result.cache_hit else (
            f"built in {result.build_seconds * 1e3:.1f} ms"
        )
        print(
            f"{result.spec.label:>10} {result.spec.kind:>12} "
            f"{result.count:>6}  {source}"
        )

    stats = batch.cache_stats
    print(
        f"\n{len(batch)} queries -> {batch.distinct_indexes} distinct indexes, "
        f"{stats['builds']} builds, {stats['hits']} cache hits "
        f"({batch.wall_seconds * 1e3:.1f} ms total)"
    )

    # A τ-sweep result keeps records per threshold.
    sweep = batch[0]
    for tau, records in sweep.records_by_tau.items():
        print(f"  τ = {tau}: {len(records)} durable triangles")


def run_cli_batch() -> None:
    """The same batch through the ``python -m repro batch`` JSON format."""
    doc = {
        "dataset": {"workload": "social", "n": 300, "seed": 7},
        "queries": [
            {"kind": "triangles", "taus": [1, 2, 3], "label": "tri-sweep"},
            {"kind": "pairs-union", "tau": 3, "kappa": 3, "label": "union"},
        ],
    }
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        json.dump(doc, fh)
        path = fh.name
    print("\n--- python -m repro batch", path, "---")
    repro_cli(["batch", path])


if __name__ == "__main__":
    run_engine_batch()
    run_cli_batch()
