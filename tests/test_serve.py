"""Tests for the async serving front end (ISSUE 2 tentpole).

Drives a real in-process server over real sockets: register → query →
stream → stats, per-query fault records in the NDJSON stream, bounded
admission (429), shard isolation between datasets, and clean shutdown.
Registry and bridge units are covered directly underneath.  Keep-alive
connection-loop behaviour (reuse, timeouts, framing rejections) lives
in ``test_serve_keepalive.py``.
"""

import asyncio
import json
import http.client
import threading
import time

import pytest

from repro import QueryEngine, QuerySpec, ValidationError
from repro.datasets import workload_from_spec
from repro.engine import QueryResult, plan_batch
from repro.serve import (
    AdmissionQueue,
    DatasetRegistry,
    OverloadedError,
    UnknownDatasetError,
    start_server_thread,
    submit_plans,
)

from conftest import random_tps

SOCIAL_SPEC = {"workload": "social", "n": 80, "seed": 5}
COAUTHOR_SPEC = {"workload": "coauthor", "n": 60, "seed": 3}


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def request(handle, method, path, body=None, timeout=30):
    """One request against the fixture server; returns (status, headers, bytes)."""
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def request_json(handle, method, path, body=None):
    status, _, data = request(handle, method, path, body)
    return status, json.loads(data)


def request_ndjson(handle, method, path, body=None):
    status, _, data = request(handle, method, path, body)
    lines = [json.loads(line) for line in data.decode().strip().split("\n") if line]
    return status, lines


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    handle = start_server_thread(queue_limit=8)
    status, doc = request_json(
        handle, "POST", "/datasets", {"name": "soc", "dataset": SOCIAL_SPEC}
    )
    assert status == 201, doc
    yield handle
    handle.stop()


# ----------------------------------------------------------------------
# Protocol end-to-end
# ----------------------------------------------------------------------
class TestProtocol:
    def test_health(self, server):
        status, doc = request_json(server, "GET", "/health")
        assert status == 200 and doc["ok"] is True

    def test_stats_exposes_connection_counters(self, server):
        status, doc = request_json(server, "GET", "/stats")
        assert status == 200
        connections = doc["server"]["connections"]
        assert connections["opened"] >= 1
        assert connections["active"] >= 0
        assert doc["server"]["uptime_seconds"] >= 0

    def test_register_reports_identity(self, server):
        status, doc = request_json(
            server, "POST", "/datasets", {"name": "tmp-id", "dataset": SOCIAL_SPEC}
        )
        assert status == 201
        reg = doc["registered"]
        tps = workload_from_spec(SOCIAL_SPEC)
        assert reg["n"] == tps.n and reg["fingerprint"] == tps.fingerprint()

    def test_duplicate_registration_conflicts(self, server):
        status, doc = request_json(
            server, "POST", "/datasets", {"name": "soc", "dataset": SOCIAL_SPEC}
        )
        assert status == 409 and "already registered" in doc["error"]
        status, _ = request_json(
            server,
            "POST",
            "/datasets",
            {"name": "soc", "dataset": SOCIAL_SPEC, "replace": True},
        )
        assert status == 201

    def test_register_bad_spec_is_400(self, server):
        status, doc = request_json(
            server, "POST", "/datasets",
            {"name": "bad", "dataset": {"workload": "nonsense"}},
        )
        assert status == 400 and "unknown workload" in doc["error"]
        status, _ = request_json(server, "POST", "/datasets", {"name": "x"})
        assert status == 400
        # A non-string name is client error (400), never a 500.
        status, doc = request_json(
            server, "POST", "/datasets",
            {"name": {"a": 1}, "dataset": SOCIAL_SPEC},
        )
        assert status == 400 and "name" in doc["error"]

    def test_query_streams_results_matching_engine(self, server):
        queries = [
            {"kind": "triangles", "taus": [2.0, 4.0], "label": "sweep"},
            {"kind": "pairs-sum", "tau": 3.0},
            {"kind": "cliques", "tau": 2.0, "m": 3},
        ]
        status, lines = request_ndjson(
            server, "POST", "/query", {"dataset": "soc", "queries": queries}
        )
        assert status == 200
        assert lines[0]["type"] == "batch-start" and lines[0]["queries"] == 3
        assert lines[-1]["type"] == "batch-end"
        assert lines[-1]["ok"] is True and lines[-1]["errors"] == 0
        assert "cache" in lines[-1]

        results = [ln for ln in lines if ln["type"] == "result"]
        assert [r["query"] for r in results] == [0, 1, 2]
        assert all(r["ok"] for r in results)

        # The streamed counts must equal a direct engine run.
        engine = QueryEngine()
        batch = engine.run_batch(
            workload_from_spec(SOCIAL_SPEC),
            [QuerySpec.from_dict(q) for q in queries],
        )
        for streamed, local in zip(results, batch):
            assert streamed["counts"] == {
                str(tau): len(recs) for tau, recs in local.records_by_tau.items()
            }

        # One records line per τ so a τ-sweep never buffers as one blob.
        record_lines = [ln for ln in lines if ln["type"] == "records"]
        sweep_lines = [ln for ln in record_lines if ln["query"] == 0]
        assert [ln["tau"] for ln in sweep_lines] == [2.0, 4.0]
        for ln in record_lines:
            assert len(ln["records"]) == ln["count"]

    def test_include_records_false_skips_payload(self, server):
        status, lines = request_ndjson(
            server,
            "POST",
            "/query",
            {
                "dataset": "soc",
                "queries": [{"kind": "triangles", "tau": 2.0}],
                "include_records": False,
            },
        )
        assert status == 200
        assert not [ln for ln in lines if ln["type"] == "records"]
        assert [ln for ln in lines if ln["type"] == "result"][0]["ok"] is True

    def test_repeat_query_hits_shard_cache(self, server):
        body = {"dataset": "soc", "queries": [{"kind": "pairs-union", "tau": 3.0, "kappa": 2}]}
        request_ndjson(server, "POST", "/query", body)
        _, lines = request_ndjson(server, "POST", "/query", body)
        result = [ln for ln in lines if ln["type"] == "result"][0]
        assert result["cache_hit"] is True

    def test_unknown_dataset_is_404(self, server):
        status, doc = request_json(
            server, "POST", "/query",
            {"dataset": "nope", "queries": [{"kind": "triangles", "tau": 2.0}]},
        )
        assert status == 404 and "unknown dataset" in doc["error"]

    def test_invalid_query_spec_is_400(self, server):
        status, doc = request_json(
            server, "POST", "/query",
            {"dataset": "soc", "queries": [{"kind": "triangles"}]},
        )
        assert status == 400 and "durability" in doc["error"]
        # Plan-time validation too (exact triangles need the ℓ∞ metric).
        status, doc = request_json(
            server, "POST", "/query",
            {"dataset": "soc",
             "queries": [{"kind": "triangles", "tau": 2.0, "backend": "linf-exact"}]},
        )
        assert status == 400 and "linf" in doc["error"]

    def test_inline_dataset_spec_is_rejected(self, server):
        status, doc = request_json(
            server, "POST", "/query",
            {"dataset": SOCIAL_SPEC, "queries": [{"kind": "triangles", "tau": 2.0}]},
        )
        assert status == 400 and "register" in doc["error"]

    def test_unroutable_paths(self, server):
        status, _ = request_json(server, "GET", "/nope")
        assert status == 404
        status, _ = request_json(server, "GET", "/query")
        assert status == 405
        status, doc = request_json(server, "POST", "/query", {})
        assert status == 400 and "dataset" in doc["error"]

    def test_stats_reports_worker_identity(self, server):
        """The identity block a routing tier attributes counters with."""
        import os

        status, doc = request_json(server, "GET", "/stats")
        assert status == 200
        identity = doc["server"]["identity"]
        assert identity["pid"] == os.getpid()  # in-process fixture server
        assert identity["host"] == server.host
        assert identity["port"] == server.port
        assert identity["started_age_seconds"] >= 0
        # Monotonic age: never jumps backwards between polls.
        _, later = request_json(server, "GET", "/stats")
        assert (
            later["server"]["identity"]["started_age_seconds"]
            >= identity["started_age_seconds"]
        )

    def test_delete_dataset_roundtrip(self, server):
        spec = dict(SOCIAL_SPEC, seed=21)
        status, _ = request_json(
            server, "POST", "/datasets", {"name": "tmp-del", "dataset": spec}
        )
        assert status == 201
        # Warm a shard index so DELETE really frees something.
        request_ndjson(
            server, "POST", "/query",
            {"dataset": "tmp-del", "queries": [{"kind": "triangles", "tau": 2.0}],
             "include_records": False},
        )
        status, doc = request_json(server, "DELETE", "/datasets/tmp-del")
        assert status == 200 and doc["removed"]["name"] == "tmp-del"
        status, doc = request_json(
            server, "POST", "/query",
            {"dataset": "tmp-del", "queries": [{"kind": "triangles", "tau": 2.0}]},
        )
        assert status == 404
        status, doc = request_json(server, "DELETE", "/datasets/tmp-del")
        assert status == 404 and "unknown dataset" in doc["error"]
        # The name is immediately free again.
        status, _ = request_json(
            server, "POST", "/datasets", {"name": "tmp-del", "dataset": spec}
        )
        assert status == 201
        _, lines = request_ndjson(
            server, "POST", "/query",
            {"dataset": "tmp-del", "queries": [{"kind": "triangles", "tau": 2.0}],
             "include_records": False},
        )
        assert lines[-1]["ok"] is True
        request_json(server, "DELETE", "/datasets/tmp-del")

    def test_delete_wrong_method_is_405(self, server):
        status, _ = request_json(server, "GET", "/datasets/soc")
        assert status == 405
        status, _ = request_json(server, "POST", "/datasets/soc")
        assert status == 405

    def test_malformed_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("POST", "/query", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Fault isolation over the wire
# ----------------------------------------------------------------------
class TestFaultStreaming:
    def test_poisoned_query_streams_error_record(self, server, monkeypatch):
        import repro.serve.bridge as bridge_mod
        from repro.engine.executor import execute_plan as real_execute

        def poisoned_execute(plan, cache, raise_on_error=True, trace=None):
            if plan.spec.label == "poison":
                return QueryResult(
                    spec=plan.spec,
                    key=plan.key,
                    records_by_tau={},
                    cache_hit=False,
                    build_seconds=0.0,
                    query_seconds=0.0,
                    error="RuntimeError: poisoned",
                )
            return real_execute(plan, cache, raise_on_error, trace=trace)

        monkeypatch.setattr(bridge_mod, "execute_plan", poisoned_execute)
        status, lines = request_ndjson(
            server,
            "POST",
            "/query",
            {
                "dataset": "soc",
                "queries": [
                    {"kind": "triangles", "tau": 2.0},
                    {"kind": "triangles", "tau": 2.0, "label": "poison"},
                    {"kind": "pairs-sum", "tau": 3.0},
                ],
            },
        )
        assert status == 200  # the batch itself succeeds; the query failed
        results = [ln for ln in lines if ln["type"] == "result"]
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"] == "RuntimeError: poisoned"
        assert lines[-1]["errors"] == 1 and lines[-1]["ok"] is False


# ----------------------------------------------------------------------
# Backpressure and shard isolation
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_admission_queue_rejects_with_429(self, server):
        shard = server.app.registry.get("soc")
        limit = shard.admission.limit
        assert shard.admission.try_acquire(limit)  # fill the queue
        try:
            status, headers, data = request(
                server,
                "POST",
                "/query",
                {"dataset": "soc", "queries": [{"kind": "triangles", "tau": 2.0}]},
            )
            doc = json.loads(data)
            assert status == 429
            assert "admission limit" in doc["error"]
            assert "Retry-After" in headers
        finally:
            shard.admission.release(limit)
        stats = server.app.registry.get("soc").stats()
        assert stats["rejected"] >= 1
        # Released: the next query goes straight through.
        status, lines = request_ndjson(
            server,
            "POST",
            "/query",
            {"dataset": "soc", "queries": [{"kind": "triangles", "tau": 2.0}]},
        )
        assert status == 200 and lines[-1]["ok"] is True

    def test_oversized_batch_is_rejected_whole(self, server):
        shard = server.app.registry.get("soc")
        limit = shard.admission.limit
        queries = [{"kind": "triangles", "tau": float(t)} for t in range(2, 2 + limit + 1)]
        status, _, data = request(
            server, "POST", "/query", {"dataset": "soc", "queries": queries}
        )
        assert status == 429
        assert shard.admission.in_flight == 0  # nothing half-admitted


class TestShardIsolation:
    def test_concurrent_batches_on_two_shards(self, server):
        status, _ = request_json(
            server, "POST", "/datasets",
            {"name": "coa", "dataset": COAUTHOR_SPEC, "replace": True},
        )
        assert status == 201
        soc_cache = server.app.registry.get("soc").cache
        coa_cache = server.app.registry.get("coa").cache
        assert soc_cache is not coa_cache
        coa_builds_before = coa_cache.stats.builds

        outcomes = {}

        def worker(name, taus):
            outcomes[name] = request_ndjson(
                server,
                "POST",
                "/query",
                {"dataset": name,
                 "queries": [{"kind": "triangles", "taus": taus},
                             {"kind": "pairs-sum", "tau": taus[0]}]},
            )

        threads = [
            threading.Thread(target=worker, args=("soc", [2.0, 3.0])),
            threading.Thread(target=worker, args=("coa", [20.0, 30.0])),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for name in ("soc", "coa"):
            status, lines = outcomes[name]
            assert status == 200
            assert lines[-1]["type"] == "batch-end" and lines[-1]["ok"] is True

        # Each shard built into its own cache: the coauthor queries
        # never touched the social shard's index cache.
        assert coa_cache.stats.builds >= coa_builds_before + 2
        status, doc = request_json(server, "GET", "/stats")
        assert status == 200
        assert set(doc["shards"]) >= {"soc", "coa"}
        for name in ("soc", "coa"):
            shard_stats = doc["shards"][name]
            assert "cache" in shard_stats and "failed_waits" in shard_stats["cache"]
            assert shard_stats["queries_total"] >= 2


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_shutdown_endpoint_stops_server_cleanly(self):
        handle = start_server_thread()
        request_json(
            handle, "POST", "/datasets",
            {"name": "d", "dataset": {"workload": "uniform", "n": 40}},
        )
        status, doc = request_json(handle, "POST", "/shutdown")
        assert status == 200 and doc["stopping"] is True
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()
        with pytest.raises(OSError):
            request_json(handle, "GET", "/health")
        handle.stop()  # idempotent

    def test_handle_stop_is_clean_and_idempotent(self):
        handle = start_server_thread()
        handle.stop()
        handle.stop()
        assert not handle._thread.is_alive()


# ----------------------------------------------------------------------
# Registry / bridge units
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_accepts_tps_and_spec(self):
        registry = DatasetRegistry()
        try:
            shard = registry.register("direct", random_tps(n=30, seed=1))
            assert shard.tps.n == 30 and "direct" in registry
            registry.register("spec", {"workload": "uniform", "n": 25})
            assert registry.names() == ["direct", "spec"]
        finally:
            registry.close()

    def test_duplicate_and_replace(self):
        from repro.serve import DuplicateDatasetError

        registry = DatasetRegistry()
        try:
            first = registry.register("d", random_tps(n=20, seed=1))
            with pytest.raises(DuplicateDatasetError, match="already registered"):
                registry.register("d", random_tps(n=20, seed=2))
            second = registry.register("d", random_tps(n=20, seed=2), replace=True)
            assert registry.get("d") is second is not first
        finally:
            registry.close()

    def test_bad_names_rejected(self):
        registry = DatasetRegistry()
        for name in ("", "a/b", " padded ", 7):
            with pytest.raises(ValidationError):
                registry.register(name, random_tps(n=10, seed=0))

    def test_unknown_dataset_error(self):
        registry = DatasetRegistry()
        with pytest.raises(UnknownDatasetError, match="unknown dataset"):
            registry.get("ghost")

    def test_per_shard_defaults_and_overrides(self):
        registry = DatasetRegistry(max_entries=4, queue_limit=9)
        try:
            a = registry.register("a", random_tps(n=10, seed=0))
            b = registry.register(
                "b", random_tps(n=10, seed=1), max_entries=2, queue_limit=3
            )
            assert a.cache.max_entries == 4 and a.admission.limit == 9
            assert b.cache.max_entries == 2 and b.admission.limit == 3
        finally:
            registry.close()

    def test_close_is_idempotent(self):
        registry = DatasetRegistry()
        registry.register("d", random_tps(n=10, seed=0))
        registry.close()
        registry.close()
        assert len(registry) == 0

    def test_remove_closes_shard_and_frees_cache(self):
        registry = DatasetRegistry()
        try:
            shard = registry.register("d", random_tps(n=20, seed=0))
            engine = QueryEngine(cache=shard.cache)
            engine.run(shard.tps, QuerySpec(kind="triangles", taus=2.0))
            assert len(shard.cache) == 1
            removed = registry.remove("d")
            assert removed is shard and "d" not in registry
            assert len(shard.cache) == 0  # resident indexes freed
            # The executor is really down.
            with pytest.raises(RuntimeError):
                shard.executor.submit(lambda: None)
            with pytest.raises(UnknownDatasetError):
                registry.remove("d")
            # The name is free for immediate reuse.
            registry.register("d", random_tps(n=10, seed=1))
        finally:
            registry.close()


class TestAdmissionQueue:
    def test_acquire_release_accounting(self):
        q = AdmissionQueue(3)
        assert q.try_acquire(2) and q.in_flight == 2
        assert not q.try_acquire(2)  # 2 + 2 > 3: rejected whole
        assert q.rejected == 2 and q.in_flight == 2
        q.release(2)
        assert q.in_flight == 0

    def test_limit_validated(self):
        with pytest.raises(ValidationError):
            AdmissionQueue(0)

    def test_submit_plans_is_all_or_nothing(self):
        registry = DatasetRegistry(queue_limit=2)
        try:
            shard = registry.register("d", random_tps(n=30, seed=1))
            specs = [QuerySpec(kind="triangles", taus=float(t)) for t in (2, 3, 4)]
            plans = plan_batch(specs, shard.tps)

            async def overloaded():
                with pytest.raises(OverloadedError):
                    submit_plans(shard, plans)  # 3 > limit of 2
                assert shard.admission.in_flight == 0

            asyncio.run(overloaded())

            async def admitted():
                futures = submit_plans(shard, plans[:2])
                results = [await f for f in futures]
                assert all(r.ok for r in results)
                # Done-callbacks release the slots on the loop.
                for _ in range(100):
                    if shard.admission.in_flight == 0:
                        break
                    await asyncio.sleep(0.01)
                assert shard.admission.in_flight == 0

            asyncio.run(admitted())
            # The done-callbacks also bumped the served counters.
            for _ in range(100):
                if shard.stats()["queries_total"] == 2:
                    break
                time.sleep(0.01)
            assert shard.stats()["queries_total"] == 2
            assert shard.stats()["errors_total"] == 0
        finally:
            registry.close()
