"""Tests for AggDurablePair-SUM (Section 5.1, Theorem 5.1)."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines.brute_pairs import brute_pair_witness_sum, brute_sum_pairs
from repro.core.aggregate import SumPairIndex
from repro.errors import BackendError

from conftest import random_tps


def assert_pair_sandwich(tps, tau, epsilon, records, slack=1e-6):
    got = [r.key for r in records]
    got_set = set(got)
    assert len(got) == len(got_set), "duplicate pair reported"
    must = brute_sum_pairs(tps, tau, threshold=1.0)
    may = brute_sum_pairs(tps, tau, threshold=1.0 + epsilon + slack)
    missing = must - got_set
    assert not missing, f"missed exact SUM pairs: {sorted(missing)[:5]}"
    extra = got_set - may
    assert not extra, f"reported non-ε SUM pairs: {sorted(extra)[:5]}"


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("epsilon", [0.25, 0.5])
    def test_sandwich(self, seed, epsilon):
        tps = random_tps(n=55, seed=seed)
        idx = SumPairIndex(tps, epsilon=epsilon)
        for tau in (2.0, 5.0):
            assert_pair_sandwich(tps, tau, epsilon, idx.query(tau))

    @pytest.mark.parametrize("metric", ["l1", "linf"])
    def test_other_metrics(self, metric):
        tps = random_tps(n=45, seed=9, metric=metric)
        idx = SumPairIndex(tps, epsilon=0.5)
        assert_pair_sandwich(tps, 3.0, 0.5, idx.query(3.0))

    def test_tree_and_profile_agree(self):
        tps = random_tps(n=50, seed=17)
        a = SumPairIndex(tps, epsilon=0.5, sum_backend="profile")
        b = SumPairIndex(tps, epsilon=0.5, sum_backend="tree")
        for tau in (2.0, 4.0):
            assert {r.key for r in a.query(tau)} == {r.key for r in b.query(tau)}

    def test_grid_backend(self):
        tps = random_tps(n=45, seed=23)
        idx = SumPairIndex(tps, epsilon=0.5, backend="grid")
        assert_pair_sandwich(tps, 3.0, 0.5, idx.query(3.0))


class TestScores:
    @pytest.mark.parametrize("seed", range(3))
    def test_witness_sum_bounds(self, seed):
        """The index's ε-witness sum dominates the exact witness sum."""
        eps = 0.5
        tps = random_tps(n=40, seed=seed + 30)
        idx = SumPairIndex(tps, epsilon=eps)
        rng = np.random.default_rng(seed)
        for _ in range(20):
            p, q = rng.integers(0, tps.n, size=2)
            if p == q:
                continue
            got = idx.witness_sum(int(p), int(q))
            exact = brute_pair_witness_sum(tps, int(p), int(q), threshold=1.0)
            relaxed = brute_pair_witness_sum(
                tps, int(p), int(q), threshold=1.0 + eps + 1e-6
            )
            assert exact - 1e-9 <= got <= relaxed + 1e-9

    def test_reported_scores_at_least_tau(self):
        tps = random_tps(n=50, seed=31)
        idx = SumPairIndex(tps, epsilon=0.5)
        for r in idx.query(3.0):
            assert r.score >= 3.0

    def test_anchor_order_in_records(self):
        tps = random_tps(n=50, seed=37)
        idx = SumPairIndex(tps, epsilon=0.5)
        for r in idx.query(2.0):
            assert tps.anchor_key(r.p) > tps.anchor_key(r.q)


class TestEdgeCases:
    def test_validation(self):
        tps = random_tps(n=20, seed=1)
        with pytest.raises(ValidationError):
            SumPairIndex(tps, epsilon=2.0)
        with pytest.raises(BackendError):
            SumPairIndex(tps, sum_backend="bogus")
        with pytest.raises(ValidationError):
            SumPairIndex(tps).query(0.0)

    def test_no_witnesses_no_pairs(self):
        # Two adjacent long-lived points with no third point: SUM = 0.
        pts = np.array([[0.0, 0.0], [0.5, 0.0]])
        tps = TemporalPointSet(pts, [0, 0], [10, 10])
        assert SumPairIndex(tps, epsilon=0.5).query(1.0) == []

    def test_single_witness_line(self):
        # p-q adjacent, witness w adjacent to both, all co-temporal.
        pts = np.array([[0.0, 0.0], [0.8, 0.0], [0.4, 0.3]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 10])
        got = {r.key for r in SumPairIndex(tps, epsilon=0.25).query(5.0)}
        # every pair has exactly one witness with overlap 10 >= 5
        assert got == {(0, 1), (0, 2), (1, 2)}

    def test_edge_durability_requirement(self):
        # Window of p,q is 1 < tau although witness sums are large.
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [0.2, 0.2], [0.3, 0.1]])
        tps = TemporalPointSet(
            pts, [0, 9, 0, 0], [10, 11, 20, 20]
        )  # window(0,1) = [9,10]
        got = {r.key for r in SumPairIndex(tps, epsilon=0.25).query(2.0)}
        assert (0, 1) not in got
