"""Exact algorithms for the ℓ∞ metric — Appendix B.

Under ``ℓ∞`` the unit ball is an axis-aligned cube, so the canonical
balls of Section 3 can be replaced by *exact* unit cubes: the square of
side 2 around an anchor ``p`` splits into ``2^d`` half-open unit cubes
``□^p_j``; any two points in one cube are within distance 1, and a
cross-cube partner of ``q`` must lie in ``□_q ∩ □^p_k`` where
``□_q = B_∞(q, 1)``.  Every query is a rectangle query on ``D_R``
(:mod:`repro.rangetree`), so no approximation is incurred:

* :class:`LinfTriangleIndex` — ``ReportTriangle-I`` (Algorithm 5,
  Theorem B.3): reports exactly ``T_τ``;
* :class:`LinfAnchorBackend` — ``DetectTriangle-I`` /
  ``ReportDeltaTriangle-I`` (Algorithms 6–7, Theorem B.4), pluggable
  into :class:`~repro.core.incremental.IncrementalTriangleSession`.

Both restore the missing ``|I_p| < τ≺`` branch (DESIGN.md note 2).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import BackendError, ValidationError
from ..geometry.metrics import ChebyshevMetric
from ..rangetree.range_tree import Box, RangeTree, Side, box_intersect, closed_box
from ..types import TemporalPointSet, TriangleRecord
from .incremental import AnchorBackend
from .triangles import _record

__all__ = ["LinfDurableRange", "LinfTriangleIndex", "LinfAnchorBackend"]

_INF = float("inf")


class LinfDurableRange:
    """``D_R`` with the τ-durable range query ``Q_R`` (Appendix B.1)."""

    def __init__(self, tps: TemporalPointSet) -> None:
        if not isinstance(tps.metric, ChebyshevMetric):
            raise BackendError(
                "the exact backend requires the linf metric, got "
                f"{tps.metric.name!r}"
            )
        self.tps = tps
        self.tree = RangeTree(tps.points, tps.starts, tps.ends)

    # ------------------------------------------------------------------
    def query_ids(
        self,
        box: Optional[Box],
        key: Tuple[float, int],
        y_lo: float,
        y_hi: float = _INF,
    ) -> List[int]:
        """``Q_R``: ids in ``box`` with ``(I⁻,id) < key``, ``I⁺ ∈ [y_lo, y_hi)``."""
        if box is None:
            return []
        out: List[int] = []
        for leaf in self.tree.query_nodes(box):
            out.extend(leaf.collect(key, y_lo, y_hi))
        return out

    def has_any(
        self,
        box: Optional[Box],
        key: Tuple[float, int],
        y_lo: float,
        y_hi: float = _INF,
    ) -> bool:
        """Emptiness test for ``Q_R`` (``O(log^{d+1} n)`` when unbounded)."""
        if box is None:
            return False
        for leaf in self.tree.query_nodes(box):
            if y_hi == _INF:
                if leaf.has_match(key, y_lo):
                    return True
            elif leaf.collect(key, y_lo, y_hi, limit=1):
                return True
        return False

    # ------------------------------------------------------------------
    def orthant_cubes(self, anchor: int) -> List[List[Side]]:
        """The ``2^d`` half-open unit cubes partitioning ``B_∞(p, 1)``."""
        p = self.tps.points[anchor]
        d = len(p)
        cubes: List[List[Side]] = []
        for mask in range(1 << d):
            sides: List[Side] = []
            for i in range(d):
                c = float(p[i])
                if mask >> i & 1:
                    sides.append((c, False, c + 1.0, False))  # [c, c+1]
                else:
                    sides.append((c - 1.0, False, c, True))  # [c-1, c)
            cubes.append(sides)
        return cubes

    def unit_ball_box(self, q: int) -> List[Side]:
        """``□_q = B_∞(q, 1)`` as a closed box."""
        pq = self.tps.points[q]
        return closed_box(pq - 1.0, pq + 1.0)


class LinfTriangleIndex:
    """Exact ``DurableTriangle`` for ℓ∞ — Algorithm 5 (Theorem B.3).

    ``query(tau)`` returns exactly ``T_τ`` (no ε-extras), each triangle
    once, anchor-first.
    """

    def __init__(self, tps: TemporalPointSet) -> None:
        self.tps = tps
        self.structure = LinfDurableRange(tps)

    def cache_key(self) -> tuple:
        """Engine-cache identity (exact solver: no ε, no spatial backend)."""
        return ("linf-triangles", self.tps.fingerprint(), 0.0, "linf-exact")

    def query(self, tau: float) -> List[TriangleRecord]:
        """All τ-durable triangles, exactly."""
        self._check_tau(tau)
        out: List[TriangleRecord] = []
        for p in self._eligible_anchors(tau):
            out.extend(self.report_anchor(p, tau))
        return out

    def query_anchored(self, anchor: int, tau: float) -> List[TriangleRecord]:
        """Triangles anchored at one point."""
        self._check_tau(tau)
        return list(self.report_anchor(anchor, tau))

    # ------------------------------------------------------------------
    def report_anchor(self, anchor: int, tau: float) -> Iterator[TriangleRecord]:
        """``ReportTriangle-I(p, τ, D_R)`` — Algorithm 5."""
        tps = self.tps
        if tps.duration(anchor) < tau:
            return
        st = self.structure
        key = tps.anchor_key(anchor)
        y = float(tps.starts[anchor]) + tau
        cubes = st.orthant_cubes(anchor)
        members = [st.query_ids(cube, key, y) for cube in cubes]
        for ids in members:
            # Type (1): same cube — every pair is within distance 1.
            for a, b in combinations(sorted(ids), 2):
                yield _record(tps, anchor, a, b)
        for j, ids in enumerate(members):
            for q in ids:
                ball = st.unit_ball_box(q)
                for k in range(j + 1, len(cubes)):
                    box = box_intersect(ball, cubes[k])
                    for b in st.query_ids(box, key, y):
                        yield _record(tps, anchor, q, b)

    def _eligible_anchors(self, tau: float) -> Iterator[int]:
        durations = self.tps.ends - self.tps.starts
        for p in np.nonzero(durations >= tau)[0]:
            yield int(p)

    @staticmethod
    def _check_tau(tau: float) -> None:
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")


class LinfAnchorBackend(AnchorBackend):
    """Exact per-anchor oracle for the incremental session (Appendix B.3)."""

    def __init__(self, tps: TemporalPointSet) -> None:
        self.tps = tps
        self.structure = LinfDurableRange(tps)
        self._index = LinfTriangleIndex.__new__(LinfTriangleIndex)
        self._index.tps = tps
        self._index.structure = self.structure

    # -- Algorithm 5 ------------------------------------------------------
    def report_all(self, anchor: int, tau: float) -> List[TriangleRecord]:
        return list(self._index.report_anchor(anchor, tau))

    # -- Algorithm 7 ------------------------------------------------------
    def report_delta(
        self, anchor: int, tau: float, tau_prec: float
    ) -> List[TriangleRecord]:
        tps = self.tps
        if tps.duration(anchor) < tau:
            return []
        if tps.duration(anchor) < tau_prec:
            # |I_p| < τ≺: no anchored triangle was τ≺-durable (DESIGN.md 2).
            return self.report_all(anchor, tau)
        st = self.structure
        key = tps.anchor_key(anchor)
        sp = float(tps.starts[anchor])
        y_lo, y_split = sp + tau, sp + tau_prec
        cubes = st.orthant_cubes(anchor)
        lam = [st.query_ids(cube, key, y_lo, y_split) for cube in cubes]
        bar = [st.query_ids(cube, key, y_split) for cube in cubes]
        out: List[TriangleRecord] = []
        for j in range(len(cubes)):
            for a, b in combinations(sorted(lam[j]), 2):
                out.append(_record(tps, anchor, a, b))
            for a in lam[j]:
                for b in bar[j]:
                    out.append(_record(tps, anchor, a, b))
        for j in range(len(cubes)):
            for q in lam[j]:
                ball = st.unit_ball_box(q)
                for k in range(len(cubes)):
                    if k == j:
                        continue
                    box = box_intersect(ball, cubes[k])
                    if box is None:
                        continue
                    if k > j:
                        partners = st.query_ids(box, key, y_lo)  # Λ_k ∪ Λ̄_k
                    else:
                        partners = st.query_ids(box, key, y_split)  # Λ̄_k only
                    for b in partners:
                        out.append(_record(tps, anchor, q, b))
        return out

    # -- Algorithm 6 ------------------------------------------------------
    def detect(self, anchor: int, tau_lo: float, tau_hi: float) -> bool:
        tps = self.tps
        duration = tps.duration(anchor)
        if duration < tau_lo:
            return False
        st = self.structure
        key = tps.anchor_key(anchor)
        sp = float(tps.starts[anchor])
        y_lo = sp + tau_lo
        cubes = st.orthant_cubes(anchor)
        if duration < tau_hi:
            # |I_p| < τ_hi: any eligible pair caps at |I_p| (DESIGN.md 2).
            members = [st.query_ids(cube, key, y_lo) for cube in cubes]
            for ids in members:
                if len(ids) >= 2:
                    return True
            for j, ids in enumerate(members):
                for q in ids:
                    ball = st.unit_ball_box(q)
                    for k in range(len(cubes)):
                        if k != j and st.has_any(
                            box_intersect(ball, cubes[k]), key, y_lo
                        ):
                            return True
            return False
        y_split = sp + tau_hi
        lam = [st.query_ids(cube, key, y_lo, y_split) for cube in cubes]
        for j, cube in enumerate(cubes):
            if not lam[j]:
                continue
            # Same cube: a band member plus any second eligible member.
            if len(lam[j]) >= 2 or st.has_any(cube, key, y_split):
                return True
            for q in lam[j]:
                ball = st.unit_ball_box(q)
                for k in range(len(cubes)):
                    if k != j and st.has_any(
                        box_intersect(ball, cubes[k]), key, y_lo
                    ):
                        return True
        return False
