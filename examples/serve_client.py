#!/usr/bin/env python3
"""Talk to the serving front end from plain stdlib ``http.client``.

Registers a dataset, streams a durable-pattern query batch line by
line (NDJSON), and reads the per-shard cache statistics — the complete
client lifecycle of :mod:`repro.serve` — all over **one keep-alive
connection**: the server holds HTTP/1.1 connections open, so a client
sweeping many τ thresholds pays TCP setup once, not per request.  It
also scrapes ``GET /metrics`` before and after its own traffic and
prints the diff — the server's accounting of exactly what this script
did (see ``docs/metrics.md``).  If no server is listening on
``--host``/``--port``, the example boots one in-process so it is
self-contained:

    python examples/serve_client.py
    # ...or against a server you started yourself:
    python -m repro serve --port 8765 &
    python examples/serve_client.py --port 8765
"""

import argparse
import http.client
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.obs import (
    counter_value,
    format_waterfall,
    histogram_snapshot,
    parse_exposition,
)

# The client plumbing lives in the library so the `repro append` and
# `repro trace` CLIs and the examples share one implementation.
from repro.serve.client import append_events, fetch_trace, fetch_traces, probe, request


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    args = parser.parse_args()

    host, port, handle = args.host, args.port, None
    try:
        probe(host, port)
    except OSError:
        print(f"no server on {host}:{port}; booting one in-process")
        from repro.serve import start_server_thread

        handle = start_server_thread()
        host, port = handle.host, handle.port

    # Every request below rides this one connection (HTTP/1.1
    # keep-alive): the server answers and waits for the next request
    # instead of closing the socket.
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        # -- scrape /metrics BEFORE doing anything: the baseline half
        #    of the diff printed at the end.
        status, data = request(conn, "GET", "/metrics")
        before = parse_exposition(data.decode())
        print(f"GET /metrics -> {status}: baseline scrape taken")

        # -- register a dataset (its own shard: cache + workers + queue)
        status, data = request(
            conn, "POST", "/datasets",
            {"name": "forum", "dataset": {"workload": "social", "n": 300, "seed": 7},
             "replace": True},
        )
        print(f"POST /datasets -> {status}: {data.decode().strip()}")

        # -- stream a mixed batch: results arrive one NDJSON line at a
        #    time, per τ, so nothing is buffered server-side.
        status, data = request(
            conn, "POST", "/query",
            {
                "dataset": "forum",
                "queries": [
                    {"kind": "triangles", "taus": [1.0, 2.0, 3.0], "label": "sweep"},
                    {"kind": "pairs-sum", "tau": 3.0},
                    {"kind": "cliques", "tau": 2.0, "m": 3},
                ],
                "include_records": False,
            },
        )
        print(f"POST /query -> {status}")
        for line in data.decode().strip().split("\n"):
            doc = json.loads(line)
            if doc["type"] == "result":
                state = "ok" if doc["ok"] else f"ERROR {doc['error']}"
                print(
                    f"  [{doc['query']}] {doc['kind']:10s} {state}  "
                    f"counts={doc['counts']}  "
                    f"{'cache hit' if doc['cache_hit'] else 'built'}"
                )
            elif doc["type"] == "batch-end":
                print(
                    f"  batch: {doc['queries']} queries, {doc['errors']} errors, "
                    f"{doc['wall_seconds'] * 1e3:.1f} ms  "
                    f"trace_id={doc.get('trace_id')}"
                )

        # -- stream a few live events into the dataset: the epoch bumps,
        #    indexes that support incremental maintenance are carried
        #    over, and the next query sees the merged point set.
        batch = "\n".join(
            json.dumps({"point": [0.1 * i, 0.2 * i], "start": 0.0, "end": 30.0})
            for i in range(1, 4)
        ).encode()
        status, doc = append_events(conn, "forum", batch)
        report = doc.get("appended", {})
        print(
            f"POST /datasets/forum/events -> {status}: epoch "
            f"{report.get('epoch')}, n={report.get('n')}, "
            f"accepted {report.get('accepted')} / rejected {report.get('rejected')}, "
            f"maintained={report.get('maintained_families')}"
        )

        # -- per-shard statistics plus the server's connection counters
        status, data = request(conn, "GET", "/stats")
        stats = json.loads(data)
        shard = stats["shards"]["forum"]
        cache = shard["cache"]
        print(
            f"GET /stats -> {status}: shard 'forum' holds "
            f"{shard['resident_indexes']} indexes, "
            f"{cache['hits']} hits / {cache['builds']} builds, "
            f"{shard['in_flight']} in flight (limit {shard['queue_limit']})"
        )
        connections = stats["server"]["connections"]
        print(
            f"connections: {connections['opened']} opened, "
            f"{connections['keepalive_reuses']} keep-alive reuses — "
            "register, query and stats all rode this one socket"
        )
        identity = stats["server"]["identity"]
        print(
            f"served by: pid {identity['pid']} on "
            f"{identity['host']}:{identity['port']}, up "
            f"{identity['started_age_seconds']:.1f}s — the identity block "
            "a routing tier uses to attribute aggregated counters"
        )

        # -- scrape /metrics again and print the diff: the server-side
        #    account of exactly the traffic this script generated, the
        #    same subtraction a Prometheus rate() does between scrapes.
        status, data = request(conn, "GET", "/metrics")
        after = parse_exposition(data.decode())

        def diff(name, labels=None):
            return counter_value(after, name, labels) - counter_value(
                before, name, labels
            )

        latency = histogram_snapshot(
            after, "serve_query_seconds", {"dataset": "forum"}
        ) - histogram_snapshot(before, "serve_query_seconds", {"dataset": "forum"})
        print(f"GET /metrics -> {status}: diff vs the baseline scrape —")
        print(
            f"  http_requests_total          +{diff('http_requests_total'):g} "
            "(register + query + stats + the scrapes themselves)"
        )
        print(
            f"  serve_queries_total{{forum}}   "
            f"+{diff('serve_queries_total', {'dataset': 'forum'}):g}"
        )
        print(
            f"  serve_cache_misses_total     "
            f"+{diff('serve_cache_misses_total'):g} (indexes built)  "
            f"hits +{diff('serve_cache_hits_total'):g}"
        )
        print(
            f"  serve_stream_bytes_total     "
            f"+{diff('serve_stream_bytes_total'):g} B of NDJSON"
        )
        if latency.count:
            print(
                f"  serve_query_seconds{{forum}}   {latency.count:g} queries, "
                f"mean {latency.mean * 1e3:.1f} ms, "
                f"p90 {latency.quantile(0.9) * 1e3:.1f} ms"
            )

        # -- every request above left a trace in the server's ring
        #    (GET /debug/traces): fetch the slowest and print its span
        #    waterfall — where that request's time actually went.
        status, doc = fetch_traces(conn, limit=50)
        traces = sorted(
            doc.get("traces", []),
            key=lambda t: -(t.get("duration_ms") or 0.0),
        )
        if traces:
            slowest = traces[0]
            status, full = fetch_trace(conn, slowest["trace_id"])
            print(
                f"GET /debug/traces -> slowest of this session's "
                f"{len(traces)} requests ({slowest.get('route')}):"
            )
            for line in format_waterfall(full).splitlines():
                print(f"  {line}")
    finally:
        conn.close()
        if handle is not None:
            handle.stop()
            print("in-process server stopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
