"""Ground truth for multi-interval lifespans (footnote 1).

Supports both durability semantics over the three-way lifespan
intersection (an :class:`~repro.temporal.interval_set.IntervalSet`):

* ``"window"`` — longest contiguous piece ≥ τ;
* ``"total"`` — the paper's ``|I|`` (union length) ≥ τ.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Set, Tuple

import numpy as np

from ..errors import ValidationError
from ..geometry.metrics import MetricSpec, get_metric
from ..temporal.interval_set import IntervalSet

__all__ = ["brute_multi_triangles"]


def brute_multi_triangles(
    points: np.ndarray,
    lifespans: Iterable[IntervalSet],
    tau: float,
    semantics: str = "window",
    threshold: float = 1.0,
    metric: MetricSpec = "l2",
) -> Set[Tuple[int, int, int]]:
    """Keys of all τ-durable triangles under the chosen semantics."""
    if semantics not in ("window", "total"):
        raise ValidationError(f"unknown semantics {semantics!r}")
    if tau <= 0:
        raise ValidationError(f"durability parameter must be positive, got {tau!r}")
    pts = np.asarray(points, dtype=float)
    sets: List[IntervalSet] = [
        s if isinstance(s, IntervalSet) else IntervalSet(s) for s in lifespans
    ]
    m = get_metric(metric)
    n = len(pts)
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        adj[i] = m.dists(pts, pts[i]) <= threshold
    np.fill_diagonal(adj, False)
    out: Set[Tuple[int, int, int]] = set()
    for a, b, c in combinations(range(n), 3):
        if not (adj[a, b] and adj[a, c] and adj[b, c]):
            continue
        inter = sets[a].intersect(sets[b]).intersect(sets[c])
        value = inter.max_window if semantics == "window" else inter.measure
        if value >= tau:
            out.add((a, b, c))
    return out
