"""E11 — output sensitivity: time tracks OUT as τ varies.

At fixed ``n`` the index cost is ``c·n + d·OUT``: sweeping τ from
permissive to selective should show time falling with the output count,
while the explicit-graph baseline stays flat (it always lists every
static triangle first).
"""

import pytest

from repro.baselines import explicit_graph_triangles

from helpers import triangle_index, workload

N = 1000
TAUS = [2.0, 4.0, 8.0, 16.0]


@pytest.mark.parametrize("tau", TAUS)
def test_ours_tau_sweep(benchmark, tau):
    idx = triangle_index(N)
    result = benchmark.pedantic(idx.query, args=(tau,), rounds=3, iterations=1)
    benchmark.extra_info["tau"] = tau
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E11 tau sweep: ours (n=1000)"


@pytest.mark.parametrize("tau", [2.0, 16.0])
def test_explicit_graph_tau_sweep(benchmark, tau):
    tps = workload(N)
    result = benchmark.pedantic(
        explicit_graph_triangles, args=(tps, tau), rounds=3, iterations=1
    )
    benchmark.extra_info["tau"] = tau
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E11 tau sweep: explicit graph (n=1000)"
