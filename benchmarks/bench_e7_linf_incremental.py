"""E7 — Theorem B.4: exact ℓ∞ incremental reporting.

The delta cost should track ``|T_{τ_{i+1}} \\ T_{τ_i}|`` exactly — the
exact counterpart of E2, without the ε slack.
"""

from repro.baselines import RecomputeIncrementalBaseline

from helpers import fresh_session, workload

N = 700
LADDER = [12.0, 10.0, 8.0, 6.0, 4.0]


def test_linf_session_ladder(benchmark):
    def setup():
        return (fresh_session(N, backend="linf-exact", first_tau=16.0),), {}

    def run(session):
        total = 0
        for tau in LADDER:
            total += len(session.query(tau))
        return total

    out = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["delta_results"] = out
    benchmark.group = "E7 linf incremental ladder (n=700)"


def test_linf_recompute_ladder(benchmark):
    tps = workload(N, "linf")

    def setup():
        base = RecomputeIncrementalBaseline(tps)
        base.query(16.0)
        return (base,), {}

    def run(base):
        total = 0
        for tau in LADDER:
            total += len(base.query(tau))
        return total

    out = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["delta_results"] = out
    benchmark.group = "E7 linf incremental ladder (n=700)"
