"""One-call convenience entry points for the library's main operations.

These are thin wrappers over the batched :class:`repro.engine.QueryEngine`:
each call becomes a single-query batch against a process-wide engine
whose index cache is shared with every other ``api`` call.  Repeated
queries over the same :class:`~repro.types.TemporalPointSet` therefore
reuse one preprocessing pass (keyed by the dataset fingerprint) instead
of rebuilding per call; for full batches, τ-sweeps and concurrency use
the engine directly (:func:`default_engine` or ``python -m repro batch``).
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .engine import IndexCache, QueryEngine, QuerySpec
from .types import PairRecord, TemporalPointSet, TriangleRecord

__all__ = [
    "find_durable_triangles",
    "find_sum_durable_pairs",
    "find_union_durable_pairs",
    "default_engine",
]

#: Indexes kept live by the process-wide engine; scripts that touch many
#: datasets in sequence evict least-recently-used preprocessing passes.
_DEFAULT_CACHE_ENTRIES = 16

_ENGINE: Optional[QueryEngine] = None
_ENGINE_LOCK = threading.Lock()


def default_engine() -> QueryEngine:
    """The process-wide engine backing the one-call helpers.

    Constructed lazily on first use: importing :mod:`repro.api` (and
    therefore :mod:`repro`) allocates no engine, cache or worker
    machinery — a process that only ever touches, say, the geometry
    helpers pays nothing for the query stack.
    """
    global _ENGINE
    if _ENGINE is None:
        with _ENGINE_LOCK:
            if _ENGINE is None:
                _ENGINE = QueryEngine(
                    cache=IndexCache(max_entries=_DEFAULT_CACHE_ENTRIES)
                )
    return _ENGINE


def find_durable_triangles(
    tps: TemporalPointSet,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[TriangleRecord]:
    """Report τ-durable triangles (Definition 1.3).

    ``backend="linf-exact"`` (valid only under the ℓ∞ metric — any other
    metric raises :class:`~repro.errors.ValidationError`) returns exactly
    ``T_τ`` (Theorem B.3); the approximate backends return ``T_τ`` plus
    possibly some τ-durable ε-triangles (Theorem 3.1).  ``backend="auto"``
    promotes ℓ∞ inputs to the exact algorithm for free and otherwise
    picks the cheapest capable backend via the registry's cost model
    (:mod:`repro.backends`).
    """
    spec = QuerySpec(kind="triangles", taus=tau, epsilon=epsilon, backend=backend)
    return default_engine().run(tps, spec).records


def find_sum_durable_pairs(
    tps: TemporalPointSet,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PairRecord]:
    """Report τ-SUM-durable pairs (Definition 1.5, Theorem 5.1)."""
    spec = QuerySpec(kind="pairs-sum", taus=tau, epsilon=epsilon, backend=backend)
    return default_engine().run(tps, spec).records


def find_union_durable_pairs(
    tps: TemporalPointSet,
    tau: float,
    kappa: int,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PairRecord]:
    """Report (τ, κ)-UNION-durable pairs (Section 5.2, Theorem 5.2)."""
    spec = QuerySpec(
        kind="pairs-union", taus=tau, kappa=kappa, epsilon=epsilon, backend=backend
    )
    return default_engine().run(tps, spec).records
