"""Tests for the counting extension (conclusion's future-work item)."""

import pytest

from repro import DurableTriangleIndex, ValidationError
from repro.core.counting import (
    count_delta_for_anchor,
    count_durable_triangles,
    count_triangles_for_anchor,
)
from repro.core.incremental import CoverTreeAnchorBackend

from conftest import random_tps


class TestCountMatchesEnumeration:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("tau", [1.0, 3.0, 7.0])
    def test_total_count(self, seed, tau):
        tps = random_tps(n=70, seed=seed)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        assert idx.count(tau) == len(idx.query(tau))

    @pytest.mark.parametrize("epsilon", [0.25, 1.0])
    def test_count_respects_epsilon(self, epsilon):
        tps = random_tps(n=60, seed=9)
        idx = DurableTriangleIndex(tps, epsilon=epsilon)
        assert idx.count(2.0) == len(idx.query(2.0))

    def test_per_anchor_counts(self):
        tps = random_tps(n=60, seed=13)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        for p in range(tps.n):
            got = count_triangles_for_anchor(idx.structure, p, 3.0)
            assert got == len(idx.query_anchored(p, 3.0))

    def test_standalone_function(self):
        tps = random_tps(n=50, seed=17)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        assert count_durable_triangles(tps, 2.0, epsilon=0.5) == len(idx.query(2.0))

    def test_validation(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(ValidationError):
            count_durable_triangles(tps, 0.0)
        with pytest.raises(ValidationError):
            count_durable_triangles(tps, 1.0, epsilon=2.0)

    def test_counting_bounds(self):
        from repro.baselines import triangle_bounds

        tps = random_tps(n=60, seed=21)
        count = count_durable_triangles(tps, 3.0, epsilon=0.5)
        must, may = triangle_bounds(tps, 3.0, 0.5)
        assert len(must) <= count <= len(may)


class TestDeltaCounts:
    @pytest.mark.parametrize("seed", range(4))
    def test_delta_count_matches_report(self, seed):
        tps = random_tps(n=55, seed=seed + 30)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        backend = CoverTreeAnchorBackend(idx.structure)
        for p in range(tps.n):
            got = count_delta_for_anchor(idx.structure, p, 3.0, 7.0)
            want = len(backend.report_delta(p, 3.0, 7.0))
            assert got == want

    def test_delta_count_short_anchor_branch(self):
        import numpy as np

        from repro import TemporalPointSet

        pts = np.zeros((3, 2))
        tps = TemporalPointSet(pts, [2, 0, 0], [8, 100, 100])
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        # anchor 0 has |I_p| = 6 inside [5, 10): the missing-branch case.
        assert count_delta_for_anchor(idx.structure, 0, 5.0, 10.0) == 1
        assert count_delta_for_anchor(idx.structure, 0, 7.0, 10.0) == 0
