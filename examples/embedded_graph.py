#!/usr/bin/env python3
"""The full paper pipeline: explicit graph → embedding → durable patterns.

The paper assumes the input graph is (or embeds as) a proximity graph.
This example starts from an explicit social graph (networkx), embeds it
with landmark MDS preserving shortest-path structure (the [50]-style
assumption of Section 1), attaches session lifespans, and mines durable
triangles — comparing against mining the explicit graph directly.

Requires the ``analysis`` extra (networkx + scipy).

Run:  python examples/embedded_graph.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import DurableTriangleIndex, TemporalPointSet
from repro.baselines import brute_force_triangle_keys
from repro.geometry.embedding import embed_graph


def main() -> None:
    # A community-structured social graph.
    graph = nx.relaxed_caveman_graph(8, 10, p=0.08, seed=4)
    n = graph.number_of_nodes()
    print(
        f"input graph: {n} vertices, {graph.number_of_edges()} edges, "
        f"{sum(nx.triangles(graph).values()) // 3} static triangles"
    )

    # Embed so that ~90% of graph edges land inside the unit ball.
    points, scale = embed_graph(graph, dim=4, n_landmarks=32, seed=0)
    print(f"embedded into R^4 (edge-length scale {scale:.3f})")

    rng = np.random.default_rng(1)
    starts = rng.uniform(0.0, 40.0, size=n)
    ends = starts + rng.uniform(2.0, 30.0, size=n)
    tps = TemporalPointSet(points, starts, ends, metric="l2")

    tau, epsilon = 8.0, 0.5
    index = DurableTriangleIndex(tps, epsilon=epsilon)
    reported = index.query(tau)
    print(f"\nτ = {tau}: {len(reported)} durable triangles in the embedding")

    # How faithful is the embedded answer to the *graph* answer?  Count
    # durable graph triangles (graph adjacency + lifespans) directly.
    durable_graph_triangles = set()
    for a, b in graph.edges():
        for c in nx.common_neighbors(graph, a, b):
            if c > b and b > a:
                lo = max(starts[a], starts[b], starts[c])
                hi = min(ends[a], ends[b], ends[c])
                if hi - lo >= tau:
                    durable_graph_triangles.add((a, b, c))
    embedded_keys = {r.key for r in reported}
    inter = len(durable_graph_triangles & embedded_keys)
    prec = inter / len(embedded_keys) if embedded_keys else 1.0
    rec = inter / len(durable_graph_triangles) if durable_graph_triangles else 1.0
    print(
        f"vs. the explicit graph: {len(durable_graph_triangles)} durable "
        f"graph triangles; embedding recall {rec:.0%}, precision {prec:.0%}"
    )
    print(
        "(the embedding is approximate — exactly the regime the paper "
        "targets; guarantees are stated w.r.t. the embedded metric)"
    )

    # Within the embedded metric itself the guarantee is strict:
    must = brute_force_triangle_keys(tps, tau)
    assert must <= embedded_keys
    print(f"metric-space sandwich check passed (|T_τ| = {len(must)})  ✓")


if __name__ == "__main__":
    main()
