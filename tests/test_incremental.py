"""Tests for IncrDurableTriangle (Section 4, Theorem 4.2)."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines import brute_force_triangle_keys
from repro.baselines.brute_incremental import (
    brute_activation_threshold,
    brute_delta_keys,
)
from repro.core.incremental import IncrementalTriangleSession, compute_activation

from conftest import random_tps


def delta_bounds(tps, tau, tau_prec, epsilon, slack=1e-6):
    """Sandwich sets for a downward move: exact delta ⊆ reported ⊆ ε-delta."""
    must = brute_delta_keys(tps, tau, tau_prec, threshold=1.0)
    may = brute_delta_keys(tps, tau, tau_prec, threshold=1.0 + epsilon + slack)
    return must, may


class TestFirstQuery:
    @pytest.mark.parametrize("seed", range(4))
    def test_first_query_equals_offline(self, seed):
        tps = random_tps(n=60, seed=seed)
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        got = {r.key for r in session.query(3.0)}
        must = brute_force_triangle_keys(tps, 3.0)
        may = brute_force_triangle_keys(tps, 3.0, threshold=1.5 + 1e-6)
        assert must <= got <= may

    def test_invalid_tau(self, small_tps):
        session = IncrementalTriangleSession(small_tps, epsilon=0.5)
        with pytest.raises(ValidationError):
            session.query(-1.0)

    def test_unknown_backend(self, small_tps):
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            IncrementalTriangleSession(small_tps, backend="nope")


class TestDownwardSequence:
    @pytest.mark.parametrize("seed", range(5))
    def test_deltas_sandwiched(self, seed):
        eps = 0.5
        tps = random_tps(n=55, seed=seed + 20)
        session = IncrementalTriangleSession(tps, epsilon=eps)
        taus = [9.0, 6.0, 4.0, 2.0, 1.0]
        prev = float("inf")
        seen = set()
        for tau in taus:
            delta = session.query(tau)
            keys = [r.key for r in delta]
            key_set = set(keys)
            assert len(keys) == len(key_set), "duplicate triangle in one delta"
            assert not (key_set & seen), "triangle re-reported across deltas"
            must, may = delta_bounds(tps, tau, prev, eps)
            assert must <= key_set <= may
            seen |= key_set
            prev = tau

    @pytest.mark.parametrize("seed", range(3))
    def test_cumulative_matches_offline(self, seed):
        eps = 0.5
        tps = random_tps(n=50, seed=seed + 40)
        session = IncrementalTriangleSession(tps, epsilon=eps)
        for tau in (8.0, 5.0, 2.0):
            session.query(tau)
            got = {r.key for r in session.current_results()}
            must = brute_force_triangle_keys(tps, tau)
            may = brute_force_triangle_keys(tps, tau, threshold=1 + eps + 1e-6)
            assert must <= got <= may

    def test_repeated_tau_reports_nothing(self, small_tps):
        session = IncrementalTriangleSession(small_tps, epsilon=0.5)
        session.query(3.0)
        assert session.query(3.0) == []


class TestUpwardAndMixed:
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_sequences(self, seed):
        eps = 0.5
        tps = random_tps(n=50, seed=seed + 60)
        session = IncrementalTriangleSession(tps, epsilon=eps)
        rng = np.random.default_rng(seed)
        taus = [float(t) for t in rng.integers(1, 12, size=8)]
        for tau in taus:
            session.query(tau)
            got = {r.key for r in session.current_results()}
            must = brute_force_triangle_keys(tps, tau)
            may = brute_force_triangle_keys(tps, tau, threshold=1 + eps + 1e-6)
            assert must <= got <= may, f"after sequence ending at tau={tau}"

    def test_upward_move_returns_empty(self, small_tps):
        session = IncrementalTriangleSession(small_tps, epsilon=0.5)
        session.query(2.0)
        assert session.query(6.0) == []
        for r in session.current_results():
            assert r.durability >= 6.0

    def test_reactivation_after_trim(self):
        # down to 2, up to 8, back down to 2: final state == T_2 again.
        tps = random_tps(n=45, seed=77)
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        first = {r.key for r in session.query(2.0)}
        session.query(8.0)
        session.query(2.0)
        final = {r.key for r in session.current_results()}
        assert final == first


class TestActivationThresholds:
    @pytest.mark.parametrize("seed", range(4))
    def test_alpha_bounds(self, seed):
        """β^∞ (S_α) lies between the exact and the ε-relaxed maxima."""
        eps = 0.5
        tps = random_tps(n=40, seed=seed + 80)
        session = IncrementalTriangleSession(tps, epsilon=eps)
        for p in range(tps.n):
            got = session.max_activation.get(p, float("-inf"))
            exact = brute_activation_threshold(tps, p, float("inf"))
            relaxed = brute_activation_threshold(
                tps, p, float("inf"), threshold=1 + eps + 1e-6
            )
            assert exact <= got <= relaxed

    @pytest.mark.parametrize("seed", range(3))
    def test_beta_after_query_bounds(self, seed):
        eps = 0.5
        tau = 4.0
        tps = random_tps(n=40, seed=seed + 90)
        session = IncrementalTriangleSession(tps, epsilon=eps)
        session.query(tau)
        for p in range(tps.n):
            got = session.activation_threshold(p)
            exact = brute_activation_threshold(tps, p, tau)
            relaxed = brute_activation_threshold(tps, p, tau, threshold=1 + eps + 1e-6)
            assert exact <= got <= relaxed

    def test_compute_activation_no_triangles(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 0.0]])
        tps = TemporalPointSet(pts, [0, 0, 0], [9, 9, 9])
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        assert session.max_activation == {}
        ends = np.sort(tps.ends)
        assert compute_activation(session.backend, 0, 5.0, ends) == float("-inf")

    def test_activation_caps_at_anchor_lifespan(self):
        # Anchor dies at t=4; partners live long: activation must be 4.
        pts = np.zeros((3, 2))
        tps = TemporalPointSet(pts, [1, 0, 0], [5, 100, 100])
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        # point 0 starts latest -> anchors the only triangle, durability 4.
        assert session.max_activation[0] == pytest.approx(4.0)

    def test_missing_branch_regression(self):
        """DESIGN.md note 2: anchor lifespan inside [τ, τ≺) with two
        long-lived partners — the printed Algorithm 2 would miss this."""
        pts = np.zeros((3, 2))
        tps = TemporalPointSet(pts, [2, 0, 0], [8, 100, 100])  # durability 6
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        assert session.query(10.0) == []          # τ₁ = 10: nothing
        delta = session.query(5.0)                # τ₂ = 5: triangle appears
        assert len(delta) == 1
        assert delta[0].durability == pytest.approx(6.0)
